// Tests for the totoro_lint rule engine (tools/lint/): synthetic source snippets are
// fed through RunLint and the findings checked per rule — a positive and a negative
// case for each of R1–R9, annotation escape hatches, include-closure resolution,
// allowlist parsing/matching, and a self-audit that re-lints the real tree in-process
// and checks the allowlist against its shrink budget.
#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "tools/lint/allowlist.h"
#include "tools/lint/lexer.h"
#include "tools/lint/rules.h"

namespace totoro::lint {
namespace {

std::vector<Finding> LintOne(const std::string& path, const std::string& content) {
  return RunLint({{path, content}}, LintOptions());
}

bool HasFinding(const std::vector<Finding>& findings, const std::string& rule,
                const std::string& symbol) {
  return std::any_of(findings.begin(), findings.end(), [&](const Finding& f) {
    return f.rule == rule && f.symbol == symbol;
  });
}

// --- Lexer basics ------------------------------------------------------------------

TEST(LexerTest, TokenizesIdentifiersStringsAndAnnotations) {
  const LexedFile lexed = Lex(
      "#include \"src/sim/simulator.h\"\n"
      "int x = 1;  // LINT: order-independent metric fold\n"
      "const char* s = \"a.b\";\n");
  ASSERT_EQ(lexed.quoted_includes.size(), 1u);
  EXPECT_EQ(lexed.quoted_includes[0], "src/sim/simulator.h");
  ASSERT_TRUE(lexed.annotations.count(2));
  EXPECT_EQ(lexed.annotations.at(2), "order-independent metric fold");
  const bool has_string =
      std::any_of(lexed.tokens.begin(), lexed.tokens.end(), [](const Token& t) {
        return t.kind == TokenKind::kString && t.text == "a.b";
      });
  EXPECT_TRUE(has_string);
}

TEST(LexerTest, StringContentsDoNotLeakTokens) {
  // `rand(` inside a string literal must not trip R1.
  const auto findings =
      LintOne("src/sim/x.cc", "const char* s = \"rand() time()\";\n");
  EXPECT_TRUE(findings.empty());
}

// --- R1: nondeterminism sources ----------------------------------------------------

TEST(R1Test, FlagsRandAndClocksInDeterministicDirs) {
  const auto findings = LintOne("src/sim/x.cc",
                                "int a = rand();\n"
                                "std::random_device rd;\n"
                                "auto t = std::chrono::steady_clock::now();\n"
                                "long w = time(nullptr);\n");
  EXPECT_TRUE(HasFinding(findings, "R1", "rand"));
  EXPECT_TRUE(HasFinding(findings, "R1", "random_device"));
  EXPECT_TRUE(HasFinding(findings, "R1", "steady_clock"));
  EXPECT_TRUE(HasFinding(findings, "R1", "time"));
}

TEST(R1Test, QuietOutsideDeterministicDirsAndOnMemberCalls) {
  // src/ml is not a determinism-scoped directory.
  EXPECT_TRUE(LintOne("src/ml/x.cc", "int a = rand();\n").empty());
  // Member / foreign-qualified `time` is someone's API, not libc time().
  EXPECT_TRUE(LintOne("src/sim/x.cc",
                      "double t = msg.time();\n"
                      "double u = sim->time();\n"
                      "double v = Clock::time();\n")
                  .empty());
  // `rand` as a bare identifier (not a call) stays quiet.
  EXPECT_TRUE(LintOne("src/sim/x.cc", "int rand = 3; int y = rand + 1;\n").empty());
}

TEST(R1Test, GetenvFlaggedEverywhereExceptSanctionedSite) {
  EXPECT_TRUE(
      HasFinding(LintOne("src/ml/x.cc", "const char* v = getenv(\"X\");\n"), "R1",
                 "getenv"));
  EXPECT_TRUE(
      HasFinding(LintOne("bench/x.cc", "const char* v = std::getenv(\"X\");\n"), "R1",
                 "getenv"));
  EXPECT_TRUE(
      LintOne("src/common/env.cc", "const char* v = std::getenv(\"X\");\n").empty());
}

// --- R2: unordered-container iteration ---------------------------------------------

TEST(R2Test, FlagsRangeForOverUnorderedMember) {
  const auto findings = LintOne("src/pubsub/x.cc",
                                "std::unordered_map<int, int> topics_;\n"
                                "void F() { for (auto& [k, v] : topics_) {} }\n");
  EXPECT_TRUE(HasFinding(findings, "R2", "topics_"));
}

TEST(R2Test, FlagsIteratorTraversal) {
  const auto findings =
      LintOne("src/dht/x.cc",
              "std::unordered_set<int> hosts_;\n"
              "void F() { for (auto it = hosts_.begin(); it != hosts_.end(); ++it) {} }\n");
  EXPECT_TRUE(HasFinding(findings, "R2", "hosts_"));
}

TEST(R2Test, AnnotationSuppressesTheFinding) {
  const auto same_line = LintOne(
      "src/pubsub/x.cc",
      "std::unordered_map<int, int> topics_;\n"
      "void F() { for (auto& [k, v] : topics_) {} }  // LINT: order-independent fold\n");
  EXPECT_TRUE(same_line.empty());
  const auto line_above = LintOne("src/pubsub/x.cc",
                                  "std::unordered_map<int, int> topics_;\n"
                                  "// LINT: order-independent pure max-fold\n"
                                  "void F() { for (auto& [k, v] : topics_) {} }\n");
  EXPECT_TRUE(line_above.empty());
}

TEST(R2Test, OrderedContainersAndLookupsStayQuiet) {
  EXPECT_TRUE(LintOne("src/pubsub/x.cc",
                      "std::map<int, int> topics_;\n"
                      "void F() { for (auto& [k, v] : topics_) {} }\n")
                  .empty());
  // find()/end() lookups on an unordered container are order-independent.
  EXPECT_TRUE(LintOne("src/pubsub/x.cc",
                      "std::unordered_map<int, int> topics_;\n"
                      "bool F() { return topics_.find(3) != topics_.end(); }\n")
                  .empty());
}

TEST(R2Test, ResolvesMembersThroughIncludeClosure) {
  const std::vector<SourceFile> files = {
      {"src/core/widget.h", "struct W { std::unordered_map<int, int> apps_; };\n"},
      {"src/core/widget.cc",
       "#include \"src/core/widget.h\"\n"
       "void W::F() { for (auto& [k, v] : apps_) {} }\n"}};
  const auto findings = RunLint(files, LintOptions());
  EXPECT_TRUE(HasFinding(findings, "R2", "apps_"));
}

TEST(R2Test, AmbiguousNameAcrossClosureStaysQuiet) {
  // `topics_` is unordered in one header and a vector in another; the loop file sees
  // both, so the lexer-level engine must not guess.
  const std::vector<SourceFile> files = {
      {"src/pubsub/a.h", "struct A { std::unordered_map<int, int> topics_; };\n"},
      {"src/faultsim/b.h", "struct B { std::vector<int> topics_; };\n"},
      {"src/faultsim/b.cc",
       "#include \"src/pubsub/a.h\"\n"
       "#include \"src/faultsim/b.h\"\n"
       "void B::F() { for (int t : topics_) {} }\n"}};
  EXPECT_TRUE(RunLint(files, LintOptions()).empty());
}

TEST(R2Test, ResolvesUsingAliases) {
  const auto findings = LintOne("src/bandit/x.cc",
                                "using ArmMap = std::unordered_map<int, double>;\n"
                                "ArmMap arms_;\n"
                                "void F() { for (auto& [k, v] : arms_) {} }\n");
  EXPECT_TRUE(HasFinding(findings, "R2", "arms_"));
}

// --- R3: pointer keys and pointer comparisons --------------------------------------

TEST(R3Test, FlagsPointerKeyedContainers) {
  const auto findings = LintOne("src/sim/x.cc",
                                "std::map<Event*, int> by_event_;\n"
                                "std::set<const Node*> nodes_;\n");
  EXPECT_TRUE(HasFinding(findings, "R3", "std::map<T*>"));
  EXPECT_TRUE(HasFinding(findings, "R3", "std::set<T*>"));
}

TEST(R3Test, PointerValuesAreFine) {
  EXPECT_TRUE(LintOne("src/sim/x.cc",
                      "std::map<int, Event*> by_id_;\n"
                      "std::set<int> ids_;\n")
                  .empty());
}

TEST(R3Test, FlagsPointerComparisonFeedingOrder) {
  const auto findings = LintOne("src/sim/x.cc",
                                "void F(Node* a, Node* b) {\n"
                                "  if (a < b) { Swap(a, b); }\n"
                                "}\n");
  EXPECT_TRUE(HasFinding(findings, "R3", "a<b"));
  // Integer comparison with the same shape stays quiet.
  EXPECT_TRUE(LintOne("src/sim/x.cc",
                      "void F(int a, int b) { if (a < b) { Swap(a, b); } }\n")
                  .empty());
}

// --- R4: metric naming and exactly-once registration -------------------------------

TEST(R4Test, FlagsBadMetricNames) {
  EXPECT_TRUE(HasFinding(
      LintOne("src/obs/x.cc", "GlobalMetrics().GetCounter(\"BadName\");\n"), "R4",
      "BadName"));
  EXPECT_TRUE(HasFinding(
      LintOne("src/obs/x.cc", "GlobalMetrics().GetCounter(\"engine\");\n"), "R4",
      "engine"));
  EXPECT_TRUE(HasFinding(
      LintOne("src/obs/x.cc", "GlobalMetrics().GetGauge(\"engine..latency\");\n"), "R4",
      "engine..latency"));
}

TEST(R4Test, AcceptsConventionalNamesAndComposedPrefixes) {
  EXPECT_TRUE(
      LintOne("src/obs/x.cc", "GlobalMetrics().GetHistogram(\"engine.round.duration_ms\");\n")
          .empty());
  // A literal ending in '.' composed with a runtime suffix is a prefix, not a name.
  EXPECT_TRUE(LintOne("src/sim/x.cc",
                      "registry.GetGauge(\"net.drops.class.\" + suffix);\n")
                  .empty());
}

TEST(R4Test, FlagsDoubleRegistration) {
  const std::vector<SourceFile> files = {
      {"src/sim/a.cc", "GlobalMetrics().GetCounter(\"sim.events_fired\");\n"},
      {"src/core/b.cc", "GlobalMetrics().GetCounter(\"sim.events_fired\");\n"}};
  const auto findings = RunLint(files, LintOptions());
  EXPECT_TRUE(HasFinding(findings, "R4", "sim.events_fired"));
  // A single registration site is fine.
  EXPECT_TRUE(
      LintOne("src/sim/a.cc", "GlobalMetrics().GetCounter(\"sim.events_fired\");\n")
          .empty());
}

TEST(R4Test, KindClashIsReported) {
  const std::vector<SourceFile> files = {
      {"src/sim/a.cc", "GlobalMetrics().GetCounter(\"sim.events_fired\");\n"},
      {"src/core/b.cc", "GlobalMetrics().GetGauge(\"sim.events_fired\");\n"}};
  const auto findings = RunLint(files, LintOptions());
  ASSERT_TRUE(HasFinding(findings, "R4", "sim.events_fired"));
  const auto it = std::find_if(findings.begin(), findings.end(), [](const Finding& f) {
    return f.rule == "R4";
  });
  EXPECT_NE(it->message.find("different kind"), std::string::npos);
}

// --- R5: bench binaries must emit a BenchReport ------------------------------------

TEST(R5Test, FlagsBenchWithoutBenchReport) {
  const auto findings = LintOne(
      "bench/bench_widget.cc",
      "int main() { std::printf(\"table only\\n\"); return 0; }\n");
  EXPECT_TRUE(HasFinding(findings, "R5", "BenchReport"));
}

TEST(R5Test, QuietWhenBenchReferencesBenchReport) {
  const auto findings = LintOne(
      "bench/bench_widget.cc",
      "#include \"src/obs/bench_report.h\"\n"
      "int main() { totoro::BenchReport report(\"widget\"); return report.Write() ? 0 : 1; }\n");
  EXPECT_FALSE(HasFinding(findings, "R5", "BenchReport"));
}

TEST(R5Test, QuietOnNonBenchFilesAndHelpers) {
  // Shared helpers (bench_util.h) and non-bench sources are out of scope.
  EXPECT_TRUE(LintOne("bench/bench_util.h", "int x;\n").empty());
  EXPECT_TRUE(LintOne("bench/tta_common.h", "int x;\n").empty());
  EXPECT_TRUE(LintOne("src/obs/export.cc", "int x;\n").empty());
}

TEST(R5Test, MentionInStringDoesNotCount) {
  // The identifier must appear as a token, not inside a string or comment.
  const auto findings = LintOne(
      "bench/bench_widget.cc",
      "int main() { std::printf(\"BenchReport goes here someday\\n\"); return 0; }\n");
  EXPECT_TRUE(HasFinding(findings, "R5", "BenchReport"));
}

// --- R6: committed baselines must be regenerated by CI ------------------------------

namespace {

// A minimal but structurally faithful workflow: a bench-telemetry job running some
// benches, followed by a sibling job that also mentions a bench (which must NOT
// satisfy R6 — only references inside bench-telemetry count).
constexpr char kWorkflow[] =
    "name: CI\n"
    "jobs:\n"
    "  verify:\n"
    "    steps:\n"
    "      - run: ctest\n"
    "  bench-telemetry:\n"
    "    steps:\n"
    "      - run: |\n"
    "          ./build/bench/bench_micro\n"
    "          ./build/bench/bench_fig8_fig9_tta\n"
    "  lint:\n"
    "    steps:\n"
    "      - run: ./build/bench/bench_orphan\n";

std::vector<Finding> LintBaselines(std::vector<std::string> baselines,
                                   std::string workflow) {
  LintOptions options;
  options.baseline_names = std::move(baselines);
  options.ci_workflow_text = std::move(workflow);
  return RunLint({{"src/obs/export.cc", "int x;\n"}}, options);
}

}  // namespace

TEST(R6Test, QuietWhenEveryBaselineBenchRunsInBenchTelemetry) {
  const auto findings =
      LintBaselines({"BENCH_micro.json", "BENCH_fig8_fig9_tta.json"}, kWorkflow);
  EXPECT_TRUE(findings.empty());
}

TEST(R6Test, FlagsBaselineWhoseBenchCiNeverRuns) {
  const auto findings = LintBaselines({"BENCH_micro.json", "BENCH_fig7_traffic.json"},
                                      kWorkflow);
  EXPECT_TRUE(HasFinding(findings, "R6", "bench_fig7_traffic"));
  EXPECT_FALSE(HasFinding(findings, "R6", "bench_micro"));
}

TEST(R6Test, MentionOutsideBenchTelemetryJobDoesNotCount) {
  // bench_orphan appears in the lint job, after bench-telemetry ended.
  const auto findings = LintBaselines({"BENCH_orphan.json"}, kWorkflow);
  EXPECT_TRUE(HasFinding(findings, "R6", "bench_orphan"));
}

TEST(R6Test, MissingBenchTelemetryJobIsItselfAFinding) {
  const auto findings = LintBaselines({"BENCH_micro.json"},
                                      "name: CI\njobs:\n  verify:\n    steps: []\n");
  EXPECT_TRUE(HasFinding(findings, "R6", "bench-telemetry"));
}

TEST(R6Test, InactiveWithoutBaselinesOrWorkflow) {
  EXPECT_TRUE(LintBaselines({}, kWorkflow).empty());
  EXPECT_TRUE(LintBaselines({"BENCH_micro.json"}, "").empty());
}

// --- R7: mutable static / thread_local state ---------------------------------------

TEST(R7Test, FlagsMutableStaticInShardDeterministicDirs) {
  const auto findings =
      LintOne("src/sim/x.cc", "void F() { static int hits = 0; ++hits; }\n");
  ASSERT_TRUE(HasFinding(findings, "R7", "hits"));
  const auto it = std::find_if(findings.begin(), findings.end(),
                               [](const Finding& f) { return f.rule == "R7"; });
  EXPECT_NE(it->message.find("shared across shard workers"), std::string::npos);
}

TEST(R7Test, FlagsThreadLocalWithDistinctMessage) {
  const auto findings = LintOne(
      "src/pubsub/x.cc", "static thread_local uint64_t window_count = 0;\n");
  ASSERT_TRUE(HasFinding(findings, "R7", "window_count"));
  const auto it = std::find_if(findings.begin(), findings.end(),
                               [](const Finding& f) { return f.rule == "R7"; });
  EXPECT_NE(it->message.find("forks its own"), std::string::npos);
}

TEST(R7Test, ConstantsAndFunctionsStayQuiet) {
  EXPECT_TRUE(LintOne("src/sim/x.cc", "static const int kMax = 3;\n").empty());
  EXPECT_TRUE(LintOne("src/sim/x.cc", "static constexpr double kEps = 0.5;\n").empty());
  // `(` before any terminator means a function, not state.
  EXPECT_TRUE(
      LintOne("src/sim/x.cc", "static int Helper(int a) { return a + 1; }\n").empty());
}

TEST(R7Test, QuietOutsideScopedDirs) {
  EXPECT_TRUE(LintOne("src/common/x.cc", "static int hits = 0;\n").empty());
  EXPECT_TRUE(LintOne("bench/x.cc", "static int hits = 0;\n").empty());
}

TEST(R7Test, SinkCacheInitializerIsSanctioned) {
  // The documented per-thread metrics-cache idiom: the initializer resolves through a
  // per-thread observability sink, so the cached pointer never crosses threads.
  EXPECT_TRUE(LintOne("src/fl/x.cc",
                      "void F() {\n"
                      "  static thread_local Counter* c =\n"
                      "      &GlobalMetrics().GetCounter(\"fl.rounds\");\n"
                      "  c->Increment(1);\n"
                      "}\n")
                  .empty());
}

TEST(R7Test, ThreadConfinedAnnotationSuppresses) {
  EXPECT_TRUE(LintOne("src/sim/x.cc",
                      "// LINT: thread-confined one execution identity per thread\n"
                      "static thread_local int exec_id = 0;\n")
                  .empty());
}

// --- R8: host-protocol Start* entry points must wrap scheduling in RunAsHost --------

TEST(R8Test, FlagsStartMethodSchedulingOutsideHostContext) {
  const auto findings = LintOne("src/dht/x.cc",
                                "void PastryNode::StartKeepAlive() {\n"
                                "  sim_->Schedule(5.0, [this] { Tick(); });\n"
                                "}\n");
  EXPECT_TRUE(HasFinding(findings, "R8", "StartKeepAlive"));
}

TEST(R8Test, QuietWhenWrappedInRunAsHost) {
  EXPECT_TRUE(LintOne("src/pubsub/x.cc",
                      "void ScribeNode::StartMaintenance() {\n"
                      "  sim_->RunAsHost(id_, [this] {\n"
                      "    sim_->Schedule(5.0, [this] { Tick(); });\n"
                      "  });\n"
                      "}\n")
                  .empty());
}

TEST(R8Test, DeclarationsAndCallSitesStayQuiet) {
  // A declaration has no body to audit.
  EXPECT_TRUE(LintOne("src/dht/x.h", "void StartKeepAlive();\n").empty());
  // A call site is not a definition (preceded by statement punctuation or `.`).
  EXPECT_TRUE(LintOne("src/dht/x.cc",
                      "void F(PastryNode& n) { n.StartKeepAlive(); }\n")
                  .empty());
}

TEST(R8Test, NonStartMethodsAndOtherDirsStayQuiet) {
  // Ticks rescheduling from inside their own event run in host context already.
  EXPECT_TRUE(LintOne("src/dht/x.cc",
                      "void PastryNode::Tick() { sim_->Schedule(5.0, [] {}); }\n")
                  .empty());
  // src/fl is not a host-protocol directory.
  EXPECT_TRUE(LintOne("src/fl/x.cc",
                      "void Engine::StartRound() { sim_->Schedule(1.0, [] {}); }\n")
                  .empty());
}

TEST(R8Test, HostContextAnnotationSuppresses) {
  EXPECT_TRUE(LintOne("src/dht/x.cc",
                      "// LINT: host-context only called from inside a host event\n"
                      "void PastryNode::StartProbe() {\n"
                      "  sim_->Schedule(5.0, [] {});\n"
                      "}\n")
                  .empty());
}

// --- R9: explicit atomic access, one ordering discipline per member -----------------

TEST(R9Test, FlagsImplicitConversionReadAndImplicitStore) {
  const auto findings = LintOne("src/sim/x.cc",
                                "std::atomic<uint64_t> drops_{0};\n"
                                "uint64_t F() { return drops_; }\n"
                                "void G() { drops_ = 3; }\n");
  EXPECT_TRUE(HasFinding(findings, "R9", "drops_"));
}

TEST(R9Test, ExplicitConsistentAccessStaysQuiet) {
  EXPECT_TRUE(LintOne("src/sim/x.cc",
                      "std::atomic<uint64_t> drops_{0};\n"
                      "void F() { drops_.fetch_add(1, std::memory_order_relaxed); }\n"
                      "uint64_t G() { return drops_.load(std::memory_order_relaxed); }\n")
                  .empty());
}

TEST(R9Test, MixedRelaxedAndSeqCstIsFlaggedAcrossFiles) {
  // The hot path is relaxed, the reader takes the seq_cst default: no coherent
  // ordering story. Flagged once per member, anchored at the seq_cst site.
  const std::vector<SourceFile> files = {
      {"src/sim/s.h",
       "struct S { std::atomic<uint64_t> spikes_; void F(); uint64_t G(); };\n"},
      {"src/sim/a.cc",
       "#include \"src/sim/s.h\"\n"
       "void S::F() { spikes_.fetch_add(1, std::memory_order_relaxed); }\n"},
      {"src/sim/b.cc",
       "#include \"src/sim/s.h\"\n"
       "uint64_t S::G() { return spikes_.load(); }\n"}};
  const auto findings = RunLint(files, LintOptions());
  ASSERT_TRUE(HasFinding(findings, "R9", "spikes_"));
  const auto it = std::find_if(findings.begin(), findings.end(),
                               [](const Finding& f) { return f.rule == "R9"; });
  EXPECT_EQ(it->file, "src/sim/b.cc");
  EXPECT_NE(it->message.find("memory_order_relaxed"), std::string::npos);
}

TEST(R9Test, SnapshotPatternAndForeignQualifiedAccessStayQuiet) {
  // The sanctioned snapshot pattern (explicit load into a plain struct), plus a
  // same-named member reached through another object — qualified access is out of
  // scope for the lexer-level rule.
  EXPECT_TRUE(LintOne("src/sim/x.cc",
                      "std::atomic<uint64_t> drops_{0};\n"
                      "struct Snap { uint64_t drops = 0; };\n"
                      "Snap F() {\n"
                      "  Snap out;\n"
                      "  out.drops = drops_.load(std::memory_order_relaxed);\n"
                      "  return out;\n"
                      "}\n"
                      "void G(Snap& other) { other.drops_ = 1; }\n")
                  .empty());
}

TEST(R9Test, UnrecognizedMemberAccessIsFlagged) {
  const auto findings = LintOne("src/sim/x.cc",
                                "std::atomic<uint64_t> drops_{0};\n"
                                "void F() { drops_.bump(); }\n");
  ASSERT_TRUE(HasFinding(findings, "R9", "drops_"));
  const auto it = std::find_if(findings.begin(), findings.end(),
                               [](const Finding& f) { return f.rule == "R9"; });
  EXPECT_NE(it->message.find("unrecognized"), std::string::npos);
}

TEST(R9Test, AnnotationSuppressesAndScopeIsLimitedToSrc) {
  EXPECT_TRUE(
      LintOne("src/sim/x.cc",
              "std::atomic<uint64_t> drops_{0};\n"
              "// LINT: atomic-access-ok test shim reads the raw value\n"
              "uint64_t F() { return drops_; }\n")
          .empty());
  EXPECT_TRUE(LintOne("tools/lint/x.cc",
                      "std::atomic<uint64_t> drops_{0};\n"
                      "uint64_t F() { return drops_; }\n")
                  .empty());
}

TEST(R9Test, AllowlistAbsorbsNewRuleFindings) {
  // R7–R9 findings flow through the same allowlist machinery as R1–R6, so a budgeted
  // entry can absorb one while it is being fixed.
  const auto findings =
      LintOne("src/sim/x.cc", "void F() { static int hits = 0; ++hits; }\n");
  ASSERT_TRUE(HasFinding(findings, "R7", "hits"));
  std::vector<std::string> errors;
  auto entries = ParseAllowlist("R7 src/sim/x.cc hits\n", &errors);
  EXPECT_TRUE(errors.empty());
  EXPECT_TRUE(FilterAllowed(findings, &entries).empty());
  EXPECT_TRUE(entries[0].used);
}

// --- Self-audit: the real tree must be clean under R1–R9 ----------------------------

#ifdef TOTORO_REPO_ROOT

namespace {

bool ReadWholeFile(const std::filesystem::path& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return false;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  *out = buf.str();
  return true;
}

}  // namespace

// Re-lints the committed tree in-process (same scan set as the totoro_lint binary,
// minus the R6 baseline/CI inputs) and checks that the allowlist absorbs every
// finding within its shrink budget. This is the library-level twin of the
// `totoro_lint_tree` ctest: it fails in the same commit that introduces a violation,
// with gtest-grade diagnostics.
TEST(SelfAuditTest, TreeIsCleanAndAllowlistWithinBudget) {
  namespace fs = std::filesystem;
  const fs::path root = TOTORO_REPO_ROOT;
  ASSERT_TRUE(fs::is_directory(root)) << root;
  std::vector<SourceFile> files;
  for (const char* dir : {"src", "tools", "bench", "examples"}) {
    const fs::path base = root / dir;
    if (!fs::is_directory(base)) {
      continue;
    }
    for (const auto& entry : fs::recursive_directory_iterator(base)) {
      const std::string ext = entry.path().extension().string();
      if (!entry.is_regular_file() ||
          (ext != ".h" && ext != ".cc" && ext != ".cpp" && ext != ".hpp")) {
        continue;
      }
      SourceFile f;
      f.path = fs::relative(entry.path(), root).generic_string();
      ASSERT_TRUE(ReadWholeFile(entry.path(), &f.content)) << f.path;
      files.push_back(std::move(f));
    }
  }
  ASSERT_GT(files.size(), 50u) << "tree walk found suspiciously few files";

  const std::vector<Finding> findings = RunLint(files, LintOptions());

  std::string allow_text;
  ASSERT_TRUE(ReadWholeFile(root / "tools/lint/allow.txt", &allow_text));
  std::vector<std::string> errors;
  auto entries = ParseAllowlist(allow_text, &errors);
  EXPECT_TRUE(errors.empty());

  const std::vector<Finding> violations = FilterAllowed(findings, &entries);
  for (const Finding& f : violations) {
    ADD_FAILURE() << FormatFinding(f);
  }
  for (const AllowEntry& e : entries) {
    EXPECT_TRUE(e.used) << "unused allow entry: " << e.rule << " " << e.file << " "
                        << e.symbol << " — delete it and lower the budget";
  }

  std::string budget_text;
  ASSERT_TRUE(ReadWholeFile(root / "tools/lint/allow_budget.txt", &budget_text));
  const long budget = std::strtol(budget_text.c_str(), nullptr, 10);
  EXPECT_GT(budget, 0);
  EXPECT_LE(static_cast<long>(entries.size()), budget)
      << "the allowlist must shrink, never grow";
}

#endif  // TOTORO_REPO_ROOT

// --- Allowlist ---------------------------------------------------------------------

TEST(AllowlistTest, ParsesEntriesAndSkipsCommentsAndBlanks) {
  std::vector<std::string> errors;
  const auto entries = ParseAllowlist(
      "# header comment\n"
      "\n"
      "R1 src/sim/simulator.cc steady_clock  # wall-clock gauge\n"
      "R2 src/pubsub/scribe_node.cc topics_\n",
      &errors);
  EXPECT_TRUE(errors.empty());
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].rule, "R1");
  EXPECT_EQ(entries[0].file, "src/sim/simulator.cc");
  EXPECT_EQ(entries[0].symbol, "steady_clock");
}

TEST(AllowlistTest, MalformedLinesAreErrors) {
  std::vector<std::string> errors;
  ParseAllowlist("R1 only_two_fields\n", &errors);
  ASSERT_EQ(errors.size(), 1u);
  EXPECT_NE(errors[0].find("allow.txt:1"), std::string::npos);
}

TEST(AllowlistTest, FilterMatchesRuleFileAndSymbol) {
  const std::vector<Finding> findings = {
      {"R1", "src/sim/simulator.cc", 14, "steady_clock", "m"},
      {"R1", "src/sim/simulator.cc", 57, "steady_clock", "m"},
      {"R1", "src/dht/pastry_node.cc", 9, "steady_clock", "m"},
  };
  std::vector<std::string> errors;
  auto entries =
      ParseAllowlist("R1 src/sim/simulator.cc steady_clock\n", &errors);
  const auto violations = FilterAllowed(findings, &entries);
  // One entry absorbs both simulator.cc findings; the pastry_node one survives.
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations[0].file, "src/dht/pastry_node.cc");
  EXPECT_TRUE(entries[0].used);
}

TEST(AllowlistTest, UnmatchedEntryStaysUnused) {
  std::vector<std::string> errors;
  auto entries = ParseAllowlist("R2 src/core/engine.cc apps_\n", &errors);
  const auto violations = FilterAllowed({}, &entries);
  EXPECT_TRUE(violations.empty());
  EXPECT_FALSE(entries[0].used);
}

// --- End-to-end formatting ---------------------------------------------------------

TEST(FormatTest, FindingFormatsAsFileLineRule) {
  const Finding f{"R2", "src/core/engine.cc", 78, "apps_", "range-for over ..."};
  EXPECT_EQ(FormatFinding(f), "src/core/engine.cc:78: [R2] range-for over ...");
}

}  // namespace
}  // namespace totoro::lint
