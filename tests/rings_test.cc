#include <gtest/gtest.h>

#include "src/core/eua_topology.h"
#include "src/rings/multi_ring.h"

namespace totoro {
namespace {

TEST(ZonesTest, MakeAndExtractZone) {
  Rng rng(1);
  for (ZoneId zone = 0; zone < 16; ++zone) {
    for (int i = 0; i < 10; ++i) {
      const NodeId id = RandomZonedId(zone, 4, rng);
      EXPECT_EQ(ZoneOf(id, 4), zone);
      EXPECT_TRUE(InZone(id, zone, 4));
      EXPECT_FALSE(InZone(id, (zone + 1) % 16, 4));
    }
  }
}

TEST(ZonesTest, ZonePrefixOccupiesTopBits) {
  const NodeId id = MakeZonedId(0xF, U128(0, 0), 4);
  EXPECT_EQ(id, U128(0xF000000000000000ull, 0));
}

TEST(ZonesTest, SuffixMaskDiscardsHighBits) {
  // A suffix with bits above 128-zone_bits must not corrupt the zone prefix.
  const NodeId id = MakeZonedId(0x3, U128::Max(), 4);
  EXPECT_EQ(ZoneOf(id, 4), 0x3u);
}

TEST(BinningTest, NearestLandmarkVoronoi) {
  std::vector<GeoPoint> landmarks = {{-33.87, 151.21}, {-37.81, 144.96}, {-31.95, 115.86}};
  DistributedBinning binning(landmarks);
  // A point near Sydney bins to landmark 0; near Perth to landmark 2.
  EXPECT_EQ(binning.NearestLandmark({-33.5, 151.0}), 0u);
  EXPECT_EQ(binning.NearestLandmark({-32.0, 116.0}), 2u);
}

TEST(BinningTest, SameAreaSameBin) {
  std::vector<GeoPoint> landmarks = {{-33.87, 151.21}, {-37.81, 144.96}};
  DistributedBinning binning(landmarks);
  const uint32_t b1 = binning.BinOf({-33.8, 151.2});
  const uint32_t b2 = binning.BinOf({-33.9, 151.3});
  EXPECT_EQ(b1, b2);
  const uint32_t b3 = binning.BinOf({-37.8, 145.0});
  EXPECT_NE(b1, b3);
}

TEST(BinningTest, DiameterGrowsWithSpread) {
  std::vector<GeoPoint> landmarks = {{0.0, 0.0}};
  DistributedBinning binning(landmarks);
  binning.RecordMember(0, {0.0, 0.0});
  binning.RecordMember(0, {0.1, 0.1});
  const double small = binning.DiameterOf(0);
  binning.RecordMember(0, {3.0, 3.0});
  const double large = binning.DiameterOf(0);
  EXPECT_LT(small, large);
  EXPECT_GT(large, 0.0);
}

TEST(BinningTest, FullOrderingSignaturesAreFiner) {
  std::vector<GeoPoint> landmarks = {{0.0, 0.0}, {0.0, 10.0}, {10.0, 0.0}};
  BinningConfig coarse;
  coarse.use_full_ordering = false;
  BinningConfig fine;
  fine.use_full_ordering = true;
  DistributedBinning coarse_binning(landmarks, coarse);
  DistributedBinning fine_binning(landmarks, fine);
  const GeoPoint p{1.0, 1.0};
  EXPECT_LE(coarse_binning.SignatureOf(p).size(), fine_binning.SignatureOf(p).size());
}

// ---------- Two-level table ----------

struct TwoLevelWorld {
  // A small synthetic world: zone_bits=3 (8 zones), suffix_bits=8.
  static constexpr int kZoneBits = 3;
  static constexpr int kSuffixBits = 8;
  std::vector<NodeId> ids;
  std::vector<TwoLevelTable> tables;

  explicit TwoLevelWorld(size_t nodes_per_zone, uint64_t seed = 42) {
    Rng rng(seed);
    for (ZoneId z = 0; z < (1u << kZoneBits); ++z) {
      for (size_t i = 0; i < nodes_per_zone; ++i) {
        // Place suffix bits directly below the zone prefix.
        const uint64_t suffix = rng.NextBelow(1ull << kSuffixBits);
        const U128 suffix_bits = U128(0, suffix) << (128 - kZoneBits - kSuffixBits);
        ids.push_back(MakeZonedId(z, suffix_bits, kZoneBits));
      }
    }
    for (const NodeId& id : ids) {
      tables.emplace_back(id, kZoneBits, kSuffixBits);
    }
    // Full knowledge: every table sees every node.
    for (auto& table : tables) {
      for (size_t i = 0; i < ids.size(); ++i) {
        table.Consider(RouteEntry{ids[i], static_cast<HostId>(i), 1.0});
      }
    }
  }

  size_t IndexOf(const NodeId& id) const {
    for (size_t i = 0; i < ids.size(); ++i) {
      if (ids[i] == id) {
        return i;
      }
    }
    return SIZE_MAX;
  }

  // Iteratively routes toward key; returns (final node index, hops).
  std::pair<size_t, int> RouteFrom(size_t start, const NodeId& key) const {
    size_t current = start;
    int hops = 0;
    while (hops < 200) {
      const auto next = tables[current].NextHop(key);
      if (!next.has_value()) {
        return {current, hops};
      }
      current = IndexOf(next->id);
      EXPECT_NE(current, SIZE_MAX);
      ++hops;
    }
    return {current, hops};
  }
};

TEST(TwoLevelTableTest, Level1TargetsFollowFormula) {
  // Node in zone 2: entries target zones (2+1), (2+2), (2+4) mod 8.
  TwoLevelTable table(MakeZonedId(2, U128(0, 0), 3), 3, 8);
  ASSERT_EQ(table.level1().size(), 3u);
  EXPECT_EQ(ZoneOf(table.level1()[0].target, 3), 3u);
  EXPECT_EQ(ZoneOf(table.level1()[1].target, 3), 4u);
  EXPECT_EQ(ZoneOf(table.level1()[2].target, 3), 6u);
}

TEST(TwoLevelTableTest, Level2StaysInZone) {
  TwoLevelWorld world(20);
  for (const auto& table : world.tables) {
    for (const auto& slot : table.level2()) {
      EXPECT_EQ(ZoneOf(slot.target, TwoLevelWorld::kZoneBits), table.zone());
      if (slot.node.has_value()) {
        EXPECT_EQ(ZoneOf(slot.node->id, TwoLevelWorld::kZoneBits), table.zone());
      }
    }
  }
}

TEST(TwoLevelTableTest, IntraZoneRoutingConvergesInZone) {
  TwoLevelWorld world(20);
  Rng rng(7);
  for (int t = 0; t < 40; ++t) {
    const size_t start = rng.NextBelow(world.ids.size());
    const ZoneId zone = ZoneOf(world.ids[start], TwoLevelWorld::kZoneBits);
    // Pick a key in the same zone.
    const NodeId key = MakeZonedId(
        zone, U128(0, rng.NextBelow(1ull << TwoLevelWorld::kSuffixBits))
                  << (128 - TwoLevelWorld::kZoneBits - TwoLevelWorld::kSuffixBits),
        TwoLevelWorld::kZoneBits);
    auto [final_node, hops] = world.RouteFrom(start, key);
    // Path convergence / administrative isolation: the whole route stays in zone.
    EXPECT_EQ(ZoneOf(world.ids[final_node], TwoLevelWorld::kZoneBits), zone);
    EXPECT_LE(hops, TwoLevelWorld::kSuffixBits + 1);
  }
}

TEST(TwoLevelTableTest, CrossZoneRoutingReachesTargetZone) {
  TwoLevelWorld world(20);
  Rng rng(11);
  for (int t = 0; t < 40; ++t) {
    const size_t start = rng.NextBelow(world.ids.size());
    const ZoneId target_zone = static_cast<ZoneId>(rng.NextBelow(8));
    const NodeId key = MakeZonedId(target_zone, U128(0, 0), TwoLevelWorld::kZoneBits);
    auto [final_node, hops] = world.RouteFrom(start, key);
    (void)hops;
    // Greedy clockwise progress must land in (or adjacent to) the target zone; with
    // populated zones the terminal node's table has no closer entry, meaning it is the
    // best-known owner of the key.
    const auto next = world.tables[final_node].NextHop(key);
    EXPECT_FALSE(next.has_value());
  }
}

TEST(TwoLevelTableTest, HopCountLogarithmicInZoneSize) {
  TwoLevelWorld world(30);
  Rng rng(13);
  double total_hops = 0;
  int trials = 0;
  for (int t = 0; t < 50; ++t) {
    const size_t start = rng.NextBelow(world.ids.size());
    const ZoneId zone = ZoneOf(world.ids[start], TwoLevelWorld::kZoneBits);
    const NodeId key = MakeZonedId(
        zone, U128(0, rng.NextBelow(1ull << TwoLevelWorld::kSuffixBits))
                  << (128 - TwoLevelWorld::kZoneBits - TwoLevelWorld::kSuffixBits),
        TwoLevelWorld::kZoneBits);
    auto [final_node, hops] = world.RouteFrom(start, key);
    (void)final_node;
    total_hops += hops;
    ++trials;
  }
  // Chord-style fingers: expected ~log2(zone population) = ~5 hops; forbid linear.
  EXPECT_LE(total_hops / trials, 8.0);
}

TEST(TwoLevelTableTest, RemoveEvictsNode) {
  TwoLevelWorld world(5);
  auto& table = world.tables[0];
  size_t resolved_before = table.NumResolvedEntries();
  ASSERT_GT(resolved_before, 0u);
  // Remove every other node; eventually slots empty out.
  for (size_t i = 1; i < world.ids.size(); ++i) {
    table.Remove(world.ids[i]);
  }
  EXPECT_EQ(table.NumResolvedEntries(), 0u);
}

TEST(BoundaryPolicyTest, IsolationBlocksCrossZoneKeys) {
  const auto policy = IsolateZoneBoundaryPolicy(4);
  Rng rng(3);
  const NodeId in_zone = RandomZonedId(5, 4, rng);
  const NodeId out_zone = RandomZonedId(6, 4, rng);
  EXPECT_TRUE(policy(in_zone, 5));
  EXPECT_FALSE(policy(out_zone, 5));
  EXPECT_TRUE(AllowAllBoundaryPolicy()(out_zone, 5));
}

// ---------- MultiRing ----------

TEST(MultiRingTest, NodesLandInRequestedZones) {
  Simulator sim;
  Network net(&sim, std::make_unique<ConstantLatency>(1.0));
  MultiRingConfig config;
  config.zone_bits = 4;
  MultiRing rings(&net, config);
  Rng rng(21);
  for (ZoneId z = 0; z < 4; ++z) {
    for (int i = 0; i < 5; ++i) {
      const size_t index = rings.AddNodeInZone(z, rng);
      EXPECT_EQ(rings.zone_of_node(index), z);
      EXPECT_EQ(ZoneOf(rings.pastry().node(index).id(), 4), z);
    }
  }
  const auto pop = rings.ZonePopulation();
  EXPECT_EQ(pop.size(), 4u);
  for (const auto& [zone, count] : pop) {
    (void)zone;
    EXPECT_EQ(count, 5u);
  }
  EXPECT_EQ(rings.NodesInZone(2).size(), 5u);
}

TEST(MultiRingTest, GeographicNodesBinnedByLandmark) {
  Simulator sim;
  Network net(&sim, std::make_unique<ConstantLatency>(1.0));
  MultiRingConfig config;
  config.zone_bits = 4;
  MultiRing rings(&net, config);
  std::vector<GeoPoint> landmarks = {{-33.87, 151.21}, {-37.81, 144.96}};
  DistributedBinning binning(landmarks);
  Rng rng(23);
  const size_t sydney = rings.AddNode({-33.8, 151.3}, binning, rng);
  const size_t sydney2 = rings.AddNode({-33.9, 151.1}, binning, rng);
  const size_t melbourne = rings.AddNode({-37.8, 145.0}, binning, rng);
  EXPECT_EQ(rings.zone_of_node(sydney), rings.zone_of_node(sydney2));
  EXPECT_NE(rings.zone_of_node(sydney), rings.zone_of_node(melbourne));
}

TEST(MultiRingTest, MayForwardHonorsPolicy) {
  Simulator sim;
  Network net(&sim, std::make_unique<ConstantLatency>(1.0));
  MultiRingConfig config;
  config.zone_bits = 4;
  MultiRing rings(&net, config);
  Rng rng(25);
  const size_t node = rings.AddNodeInZone(3, rng);
  const NodeId local_key = RandomZonedId(3, 4, rng);
  const NodeId remote_key = RandomZonedId(9, 4, rng);
  const auto isolate = IsolateZoneBoundaryPolicy(4);
  EXPECT_TRUE(rings.MayForward(node, local_key, isolate));
  EXPECT_FALSE(rings.MayForward(node, remote_key, isolate));
}

TEST(MultiRingTest, ZonePrefixedOverlayRoutesIntraZoneViaZoneMembers) {
  // The multi-ring property: a key in zone z is owned by a node of zone z (when the
  // zone is populated), so intra-zone traffic never leaves the zone.
  Simulator sim;
  NetworkConfig net_config;
  net_config.model_bandwidth = false;
  Network net(&sim, std::make_unique<PairwiseUniformLatency>(1.0, 5.0, 1), net_config);
  MultiRingConfig config;
  config.zone_bits = 2;  // 4 zones.
  MultiRing rings(&net, config);
  Rng rng(27);
  for (ZoneId z = 0; z < 4; ++z) {
    for (int i = 0; i < 25; ++i) {
      rings.AddNodeInZone(z, rng);
    }
  }
  rings.Build(rng);
  for (int t = 0; t < 40; ++t) {
    const ZoneId zone = static_cast<ZoneId>(rng.NextBelow(4));
    const NodeId key = RandomZonedId(zone, 2, rng);
    PastryNode* owner = rings.pastry().ClosestLiveNode(key);
    EXPECT_EQ(ZoneOf(owner->id(), 2), zone);
  }
}

// ---------- EUA topology ----------

TEST(EuaTopologyTest, RegionCountsMatchPublishedProportions) {
  Rng rng(31);
  const auto nodes = GenerateEuaTopology(95271, rng);
  const auto counts = RegionCounts(nodes);
  const auto& regions = EuaRegions();
  ASSERT_EQ(counts.size(), regions.size());
  for (size_t i = 0; i < regions.size(); ++i) {
    EXPECT_NEAR(static_cast<double>(counts[i]), static_cast<double>(regions[i].full_count),
                static_cast<double>(regions[i].full_count) * 0.02 + 2.0)
        << regions[i].name;
  }
}

TEST(EuaTopologyTest, ScaledTopologyKeepsEveryRegion) {
  Rng rng(33);
  const auto nodes = GenerateEuaTopology(1000, rng);
  const auto counts = RegionCounts(nodes);
  for (size_t i = 0; i < counts.size(); ++i) {
    EXPECT_GE(counts[i], 1u) << EuaRegions()[i].name;
  }
  // NSW dominates at every scale.
  size_t nsw_index = 4;
  EXPECT_EQ(EuaRegions()[nsw_index].name, "NSW");
  EXPECT_EQ(*std::max_element(counts.begin(), counts.end()), counts[nsw_index]);
}

TEST(EuaTopologyTest, NodesNearRegionAnchor) {
  Rng rng(35);
  const auto nodes = GenerateEuaTopology(500, rng);
  const auto& regions = EuaRegions();
  for (const auto& n : nodes) {
    const auto& r = regions[static_cast<size_t>(n.region)];
    EXPECT_LT(std::abs(n.location.lat_deg - r.anchor.lat_deg), r.spread_deg * 6);
  }
}

}  // namespace
}  // namespace totoro
