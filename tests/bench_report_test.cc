// Tests for the BenchReport emitter (src/obs/bench_report.h) and the benchdiff
// comparator core (tools/benchdiff/): schema round-trip through the real parser,
// byte-stability of identical runs, and the pass / warn / fail threshold matrix —
// including the acceptance cases (an injected 2x slowdown and a fingerprint change
// must both be detected).
#include "src/obs/bench_report.h"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/obs/export.h"
#include "tools/benchdiff/diff.h"

namespace totoro {
namespace {

using benchdiff::DiffOptions;
using benchdiff::DiffReports;
using benchdiff::Issue;
using benchdiff::ParseReport;
using benchdiff::Report;
using benchdiff::Severity;

BenchReport MakeSample() {
  BenchReport report("sample");
  report.SetMeta("seed", "42");
  report.SetMeta("workload", "nodes=100");
  report.SetMetric("mean_hops", 3.25, "hops", 0.0);
  report.SetMetric("events_per_sec", 1.0e6, "events/s", 0.5);
  report.SetMetric("route_ms", 120.0, "ms", 0.1);
  report.SetFingerprint("route_stats", FingerprintBytes("delivered=100"));
  return report;
}

Report Parse(const BenchReport& report) {
  Report out;
  std::string error;
  EXPECT_TRUE(ParseReport(report.ToJson(), &out, &error)) << error;
  return out;
}

TEST(BenchReportTest, JsonRoundTripsThroughBenchdiffParser) {
  const BenchReport report = MakeSample();
  const Report parsed = Parse(report);
  EXPECT_EQ(parsed.name, "sample");
  EXPECT_EQ(parsed.meta.at("seed"), "42");
  EXPECT_EQ(parsed.meta.at("workload"), "nodes=100");
  ASSERT_EQ(parsed.metrics.size(), 3u);
  EXPECT_DOUBLE_EQ(parsed.metrics.at("mean_hops").value, 3.25);
  EXPECT_DOUBLE_EQ(parsed.metrics.at("mean_hops").tolerance, 0.0);
  EXPECT_EQ(parsed.metrics.at("events_per_sec").unit, "events/s");
  EXPECT_DOUBLE_EQ(parsed.metrics.at("events_per_sec").tolerance, 0.5);
  ASSERT_EQ(parsed.fingerprints.size(), 1u);
  char expect[17];
  std::snprintf(expect, sizeof(expect), "%016llx",
                static_cast<unsigned long long>(FingerprintBytes("delivered=100")));
  EXPECT_EQ(parsed.fingerprints.at("route_stats"), expect);
}

TEST(BenchReportTest, DoublesRoundTripExactly) {
  BenchReport report("roundtrip");
  const double awkward = 0.1 + 0.2;  // Not representable; %.17g must preserve it.
  report.SetMetric("awkward", awkward, "x", 0.0);
  const Report parsed = Parse(report);
  EXPECT_EQ(parsed.metrics.at("awkward").value, awkward);
}

TEST(BenchReportTest, IdenticalRunsProduceByteEqualJson) {
  // The determinism contract: no timestamps, name-ordered maps, stable formatting.
  EXPECT_EQ(MakeSample().ToJson(), MakeSample().ToJson());
}

TEST(BenchReportTest, WriteToEmitsParseableFile) {
  const BenchReport report = MakeSample();
  const std::string dir = ::testing::TempDir();
  ASSERT_TRUE(report.WriteTo(dir));
  std::ifstream in(dir + (dir.back() == '/' ? "" : "/") + "BENCH_sample.json");
  ASSERT_TRUE(in.good());
  std::stringstream buffer;
  buffer << in.rdbuf();
  EXPECT_EQ(buffer.str(), report.ToJson());
}

TEST(BenchReportTest, ParserRejectsMalformedAndWrongSchema) {
  Report out;
  std::string error;
  EXPECT_FALSE(ParseReport("{not json", &out, &error));
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(ParseReport("{\"schema\": 2, \"name\": \"x\"}", &out, &error));
  EXPECT_FALSE(ParseReport("{\"name\": \"x\"}", &out, &error));
}

// --- DiffReports threshold matrix ---------------------------------------------------

Severity Diff(const BenchReport& baseline, const BenchReport& current,
              std::vector<Issue>* issues, double fail_above = 0.25) {
  DiffOptions options;
  options.fail_above = fail_above;
  return DiffReports(Parse(baseline), Parse(current), options, issues);
}

TEST(BenchDiffTest, IdenticalReportsPass) {
  std::vector<Issue> issues;
  EXPECT_EQ(Diff(MakeSample(), MakeSample(), &issues), Severity::kNote);
}

TEST(BenchDiffTest, InjectedTwoXSlowdownFails) {
  // Acceptance case: a 2x wall-clock regression must fail even through the widest
  // committed tolerance (0.5 on events_per_sec — a rate, so lower is worse).
  BenchReport slow = MakeSample();
  slow.SetMetric("events_per_sec", 0.5e6, "events/s", 0.5);
  std::vector<Issue> issues;
  EXPECT_EQ(Diff(MakeSample(), slow, &issues), Severity::kFail);
}

TEST(BenchDiffTest, FingerprintChangeFails) {
  // Acceptance case: any fingerprint drift means the run is no longer bit-identical.
  BenchReport drifted = MakeSample();
  drifted.SetFingerprint("route_stats", FingerprintBytes("delivered=99"));
  std::vector<Issue> issues;
  EXPECT_EQ(Diff(MakeSample(), drifted, &issues), Severity::kFail);
}

TEST(BenchDiffTest, MissingFingerprintOrMetricFails) {
  BenchReport missing_fp("sample");
  missing_fp.SetMeta("workload", "nodes=100");
  missing_fp.SetMetric("mean_hops", 3.25, "hops", 0.0);
  missing_fp.SetMetric("events_per_sec", 1.0e6, "events/s", 0.5);
  missing_fp.SetMetric("route_ms", 120.0, "ms", 0.1);
  std::vector<Issue> issues;
  EXPECT_EQ(Diff(MakeSample(), missing_fp, &issues), Severity::kFail);

  BenchReport missing_metric = MakeSample();
  std::vector<Issue> more;
  BenchReport base = MakeSample();
  base.SetMetric("extra_only_in_baseline", 1.0, "x", 0.0);
  EXPECT_EQ(Diff(base, missing_metric, &more), Severity::kFail);
}

TEST(BenchDiffTest, ExactMetricMismatchFails) {
  // tolerance == 0 marks a deterministic (virtual-time) value; any drift fails.
  BenchReport drifted = MakeSample();
  drifted.SetMetric("mean_hops", 3.26, "hops", 0.0);
  std::vector<Issue> issues;
  EXPECT_EQ(Diff(MakeSample(), drifted, &issues), Severity::kFail);
}

TEST(BenchDiffTest, RegressionInsideToleranceIsQuiet) {
  BenchReport ok = MakeSample();
  ok.SetMetric("route_ms", 126.0, "ms", 0.1);  // +5% against a 10% budget.
  std::vector<Issue> issues;
  EXPECT_EQ(Diff(MakeSample(), ok, &issues), Severity::kNote);
}

TEST(BenchDiffTest, RegressionBetweenToleranceAndFailAboveWarns) {
  BenchReport slower = MakeSample();
  slower.SetMetric("route_ms", 138.0, "ms", 0.1);  // +15%: above 10%, below 25%.
  std::vector<Issue> issues;
  EXPECT_EQ(Diff(MakeSample(), slower, &issues), Severity::kWarn);
}

TEST(BenchDiffTest, RegressionAboveFailAboveFails) {
  BenchReport slower = MakeSample();
  slower.SetMetric("route_ms", 156.0, "ms", 0.1);  // +30% > 25%.
  std::vector<Issue> issues;
  EXPECT_EQ(Diff(MakeSample(), slower, &issues), Severity::kFail);
}

TEST(BenchDiffTest, ImprovementsNeverFail) {
  BenchReport faster = MakeSample();
  faster.SetMetric("route_ms", 40.0, "ms", 0.1);             // 3x faster.
  faster.SetMetric("events_per_sec", 3.0e6, "events/s", 0.5);  // 3x higher rate.
  std::vector<Issue> issues;
  EXPECT_EQ(Diff(MakeSample(), faster, &issues), Severity::kNote);
}

TEST(BenchDiffTest, WorkloadMismatchSkipsComparison) {
  BenchReport other = MakeSample();
  other.SetMeta("workload", "nodes=999999");
  other.SetMetric("mean_hops", 99.0, "hops", 0.0);  // Would fail if compared.
  std::vector<Issue> issues;
  EXPECT_EQ(Diff(MakeSample(), other, &issues), Severity::kNote);
  ASSERT_FALSE(issues.empty());  // The skip is visible, not silent.
}

}  // namespace
}  // namespace totoro
