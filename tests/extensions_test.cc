// Tests for the extension features: secure aggregation, participant selection inside
// the engine, the asynchronous protocol, semi-synchronous rounds, and the DHT-level
// egress filter (administrative isolation on the wire).
#include <gtest/gtest.h>

#include <cmath>

#include "src/core/engine.h"
#include "src/rings/multi_ring.h"
#include "src/fl/secure_agg.h"
#include "src/rings/two_level_table.h"

namespace totoro {
namespace {

// ---------- Secure aggregation ----------

TEST(SecureAggTest, MasksCancelAcrossAllParticipants) {
  SecureAggregationGroup group({3, 7, 11, 42}, /*group_seed=*/1);
  const size_t dim = 64;
  std::vector<double> sum(dim, 0.0);
  for (uint64_t id : {3ull, 7ull, 11ull, 42ull}) {
    const auto mask = group.MaskFor(id, dim);
    for (size_t i = 0; i < dim; ++i) {
      sum[i] += mask[i];
    }
  }
  for (double v : sum) {
    EXPECT_NEAR(v, 0.0, 1e-9);
  }
}

TEST(SecureAggTest, IndividualMaskIsLarge) {
  // A single masked update must not reveal the plaintext: the mask is O(1) per
  // coordinate, comparable to the data itself.
  SecureAggregationGroup group({1, 2, 3}, 2);
  const auto mask = group.MaskFor(1, 1000);
  double norm_sq = 0.0;
  for (double v : mask) {
    norm_sq += v * v;
  }
  EXPECT_GT(std::sqrt(norm_sq / 1000.0), 0.5);  // RMS per coordinate ~ sqrt(2).
}

TEST(SecureAggTest, MaskedSumRecoversFedAvgExactly) {
  SecureAggregationGroup group({0, 1, 2, 3, 4}, 3);
  const size_t dim = 32;
  Rng rng(4);
  std::vector<WeightedUpdate> plain;
  std::vector<double> masked_sum(dim, 0.0);
  double total_weight = 0.0;
  for (uint64_t id = 0; id < 5; ++id) {
    std::vector<float> w(dim);
    for (auto& v : w) {
      v = static_cast<float>(rng.Gaussian());
    }
    const double weight = 1.0 + static_cast<double>(id);
    plain.push_back({w, weight});
    const auto masked = group.MaskUpdate(id, w, weight);
    for (size_t i = 0; i < dim; ++i) {
      masked_sum[i] += static_cast<double>(masked[i]);
    }
    total_weight += weight;
  }
  const auto expected = FederatedAverage(plain);
  std::vector<float> masked_sum_f(dim);
  for (size_t i = 0; i < dim; ++i) {
    masked_sum_f[i] = static_cast<float>(masked_sum[i]);
  }
  const auto recovered = FinalizeSecureAverage(masked_sum_f, total_weight);
  for (size_t i = 0; i < dim; ++i) {
    EXPECT_NEAR(recovered[i], expected[i], 5e-4f);
  }
}

TEST(SecureAggTest, DropoutCorrectionRepairsPartialSum) {
  SecureAggregationGroup group({0, 1, 2, 3}, 5);
  const size_t dim = 16;
  Rng rng(6);
  // Participants 0,1,2 contribute; 3 drops out.
  const std::vector<uint64_t> survivors = {0, 1, 2};
  std::vector<double> masked_sum(dim, 0.0);
  std::vector<WeightedUpdate> plain;
  double total_weight = 0.0;
  for (uint64_t id : survivors) {
    std::vector<float> w(dim, static_cast<float>(id) + 0.5f);
    const double weight = 2.0;
    plain.push_back({w, weight});
    const auto masked = group.MaskUpdate(id, w, weight);
    for (size_t i = 0; i < dim; ++i) {
      masked_sum[i] += static_cast<double>(masked[i]);
    }
    total_weight += weight;
  }
  // Without correction the result is garbage; with it, exact.
  const auto correction = group.DropoutCorrection(survivors, dim);
  std::vector<float> repaired(dim);
  for (size_t i = 0; i < dim; ++i) {
    repaired[i] = static_cast<float>(masked_sum[i] - correction[i]);
  }
  const auto expected = FederatedAverage(plain);
  const auto recovered = FinalizeSecureAverage(repaired, total_weight);
  for (size_t i = 0; i < dim; ++i) {
    EXPECT_NEAR(recovered[i], expected[i], 5e-4f);
  }
}

TEST(SecureAggTest, CombinerSkipsNullPiecesAndMergesContributors) {
  // Regression: unselected workers ack a round with data == nullptr (weight 0); the
  // secure-sum combiner used to dereference those. It must skip them, sum the real
  // pieces, and merge contributor lists so the root can identify survivors.
  auto combine = MakeSecureSumCombiner();
  auto make_piece = [](std::vector<float> w, double weight,
                       std::vector<uint64_t> contributors) {
    auto payload = std::make_shared<WeightsPayload>();
    payload->weights = std::move(w);
    payload->contributors = std::move(contributors);
    AggregationPiece p;
    p.data = std::move(payload);
    p.weight = weight;
    p.count = 1;
    return p;
  };
  auto null_ack = [] {
    AggregationPiece p;  // data == nullptr, weight 0: an unselected worker's ack.
    p.data = nullptr;
    p.weight = 0.0;
    return p;
  };
  std::vector<AggregationPiece> pieces;
  pieces.push_back(null_ack());
  pieces.push_back(make_piece({1.0f, 2.0f}, 2.0, {7}));
  pieces.push_back(null_ack());
  pieces.push_back(make_piece({10.0f, 20.0f}, 3.0, {3, 5}));
  const auto total = combine(pieces);
  ASSERT_NE(total.data, nullptr);
  const auto* payload = static_cast<const WeightsPayload*>(total.data.get());
  EXPECT_EQ(payload->weights, (std::vector<float>{11.0f, 22.0f}));
  EXPECT_EQ(payload->contributors, (std::vector<uint64_t>{3, 5, 7}));
  EXPECT_DOUBLE_EQ(total.weight, 5.0);

  // All-null input (every child unselected) must yield a null total, not a crash.
  std::vector<AggregationPiece> nulls;
  for (int i = 0; i < 3; ++i) {
    nulls.push_back(null_ack());
  }
  const auto empty = combine(nulls);
  EXPECT_EQ(empty.data, nullptr);
  EXPECT_DOUBLE_EQ(empty.weight, 0.0);
}

TEST(SecureAggTest, TreeSumWithSecureCombinerMatchesFlatFedAvg) {
  // Masked updates flow through a real tree with the secure-sum combiner; the root
  // unmasks and must match plain FedAvg.
  Simulator sim;
  NetworkConfig net_config;
  net_config.model_bandwidth = false;
  Network net(&sim, std::make_unique<PairwiseUniformLatency>(1.0, 5.0, 7), net_config);
  PastryNetwork pastry(&net, PastryConfig{});
  Rng rng(8);
  for (int i = 0; i < 40; ++i) {
    pastry.AddRandomNode(rng);
  }
  pastry.BuildOracle(rng);
  Forest forest(&pastry, ScribeConfig{});
  for (size_t i = 0; i < forest.size(); ++i) {
    forest.scribe(i).SetCombineFn(MakeSecureSumCombiner());
  }
  const NodeId topic = forest.CreateTopic("secure-app");
  std::vector<size_t> all(forest.size());
  for (size_t i = 0; i < all.size(); ++i) {
    all[i] = i;
  }
  forest.SubscribeAll(topic, all);

  std::vector<uint64_t> participant_ids(all.begin(), all.end());
  SecureAggregationGroup group(participant_ids, 9);
  const size_t dim = 24;
  Rng wrng(10);
  std::vector<WeightedUpdate> plain;
  std::vector<float> root_sum;
  double root_weight = 0.0;
  const size_t root = forest.RootOf(topic);
  forest.scribe(root).SetOnRootAggregate(
      [&](const NodeId&, uint64_t, const AggregationPiece& total) {
        root_sum = static_cast<const WeightsPayload*>(total.data.get())->weights;
        root_weight = total.weight;
      });
  for (size_t i = 0; i < forest.size(); ++i) {
    std::vector<float> w(dim);
    for (auto& v : w) {
      v = static_cast<float>(wrng.Gaussian());
    }
    const double weight = 1.0 + static_cast<double>(wrng.NextBelow(3));
    plain.push_back({w, weight});
    auto payload = std::make_shared<WeightsPayload>();
    payload->weights = group.MaskUpdate(static_cast<uint64_t>(i), w, weight);
    AggregationPiece piece;
    piece.data = std::move(payload);
    piece.weight = weight;
    forest.scribe(i).SubmitUpdate(topic, 1, std::move(piece), dim * 4);
  }
  sim.Run();
  ASSERT_EQ(root_sum.size(), dim);
  const auto expected = FederatedAverage(plain);
  const auto recovered = FinalizeSecureAverage(root_sum, root_weight);
  for (size_t i = 0; i < dim; ++i) {
    EXPECT_NEAR(recovered[i], expected[i], 2e-3f);
  }
}

// ---------- Engine extension helpers ----------

struct EngineWorld {
  Simulator sim;
  std::unique_ptr<Network> net;
  std::unique_ptr<PastryNetwork> pastry;
  std::unique_ptr<Forest> forest;
  std::unique_ptr<TotoroEngine> engine;
  Rng rng{600};

  explicit EngineWorld(size_t n, ScribeConfig scribe_config = {}) {
    net = std::make_unique<Network>(&sim, std::make_unique<PairwiseUniformLatency>(1.0, 10.0, 9),
                                    NetworkConfig{});
    pastry = std::make_unique<PastryNetwork>(net.get(), PastryConfig{});
    for (size_t i = 0; i < n; ++i) {
      pastry->AddRandomNode(rng);
    }
    pastry->BuildOracle(rng);
    forest = std::make_unique<Forest>(pastry.get(), scribe_config);
    engine = std::make_unique<TotoroEngine>(forest.get(), ComputeModel{}, 601);
  }
};

FlAppConfig BaseApp(const std::string& name, size_t rounds) {
  FlAppConfig config;
  config.name = name;
  config.model_factory = [](uint64_t seed) {
    return MakeSoftmaxRegression("sr", 16, 4, seed);
  };
  config.train.learning_rate = 0.1f;
  config.train.local_steps = 4;
  config.target_accuracy = 2.0;
  config.max_rounds = rounds;
  return config;
}

std::pair<std::vector<size_t>, std::vector<Dataset>> MakeWorkload(size_t workers,
                                                                  uint64_t seed) {
  SyntheticSpec spec;
  spec.dim = 16;
  spec.num_classes = 4;
  spec.seed = seed;
  SyntheticTask task(spec);
  Rng rng(seed + 1);
  std::vector<size_t> nodes;
  std::vector<Dataset> shards;
  for (size_t i = 0; i < workers; ++i) {
    nodes.push_back(i);
    shards.push_back(task.Generate(80, rng));
  }
  return {nodes, std::move(shards)};
}

Dataset MakeTest(uint64_t seed) {
  SyntheticSpec spec;
  spec.dim = 16;
  spec.num_classes = 4;
  spec.seed = seed;
  SyntheticTask task(spec);
  Rng rng(seed + 2);
  return task.Generate(200, rng);
}

// ---------- Participant selection ----------

TEST(SelectionIntegrationTest, OnlySelectedWorkersTrainPerRound) {
  EngineWorld world(50);
  auto config = BaseApp("select-app", 4);
  config.participants_per_round = 5;
  config.selection = SelectionPolicy::kRandom;
  auto [workers, shards] = MakeWorkload(20, 700);
  const NodeId topic =
      world.engine->LaunchApp(config, workers, std::move(shards), MakeTest(700));
  world.engine->StartAll();
  ASSERT_TRUE(world.engine->RunToCompletion());
  const auto& result = world.engine->result(topic);
  EXPECT_EQ(result.rounds_completed, 4u);
  // Per-round FL work ~ 5 trained workers, not 20: total worker-side work across 4
  // rounds must be well below the all-train case.
  const double work = world.net->metrics().TotalWork(WorkKind::kFlTask);
  EngineWorld full(50);
  auto full_config = BaseApp("select-app-full", 4);
  auto [workers2, shards2] = MakeWorkload(20, 700);
  full.engine->LaunchApp(full_config, workers2, std::move(shards2), MakeTest(700));
  full.engine->StartAll();
  ASSERT_TRUE(full.engine->RunToCompletion());
  const double full_work = full.net->metrics().TotalWork(WorkKind::kFlTask);
  EXPECT_LT(work, full_work * 0.6);
}

TEST(SelectionIntegrationTest, OortSelectionStillConverges) {
  EngineWorld world(50);
  auto config = BaseApp("oort-app", 8);
  config.participants_per_round = 8;
  config.selection = SelectionPolicy::kOortLike;
  auto [workers, shards] = MakeWorkload(20, 710);
  const NodeId topic =
      world.engine->LaunchApp(config, workers, std::move(shards), MakeTest(710));
  world.engine->StartAll();
  ASSERT_TRUE(world.engine->RunToCompletion());
  EXPECT_GT(world.engine->result(topic).final_accuracy, 0.6);
}

// ---------- Asynchronous protocol ----------

TEST(AsyncProtocolTest, ConvergesAndRecordsCurve) {
  EngineWorld world(50);
  auto config = BaseApp("async-app", 10);  // 10 re-broadcasts max.
  config.async = AsyncConfig{0.4f, 4};
  auto [workers, shards] = MakeWorkload(12, 720);
  const NodeId topic =
      world.engine->LaunchApp(config, workers, std::move(shards), MakeTest(720));
  world.engine->StartAll();
  ASSERT_TRUE(world.engine->RunToCompletion());
  const auto& result = world.engine->result(topic);
  EXPECT_GE(result.curve.size(), 2u);
  EXPECT_GT(result.final_accuracy, 0.5);
}

TEST(AsyncProtocolTest, SlowWorkerDoesNotBlockProgress) {
  // One worker is 100x slower; async evaluation points keep arriving long before it
  // ever reports (a synchronous round would stall on it).
  EngineWorld world(50);
  std::vector<double> speeds(50, 1.0);
  speeds[3] = 0.01;
  world.engine->SetSpeedFactors(speeds);
  auto config = BaseApp("async-straggler", 6);
  config.async = AsyncConfig{0.4f, 4};
  auto [workers, shards] = MakeWorkload(10, 730);
  const NodeId topic =
      world.engine->LaunchApp(config, workers, std::move(shards), MakeTest(730));
  world.engine->StartAll();
  ASSERT_TRUE(world.engine->RunToCompletion(1e9));
  EXPECT_GE(world.engine->result(topic).curve.size(), 2u);
}

// ---------- Semi-synchronous rounds ----------

TEST(SemiSyncTest, StragglerCutoffBeatsFullSyncUnderSlowNodes) {
  // Same workload with one 50x-slower worker: semi-sync (aggregation timeout) closes
  // rounds at the cutoff; full sync waits for the straggler every round.
  auto run = [](double timeout_ms) {
    ScribeConfig scribe_config;
    scribe_config.aggregation_timeout_ms = timeout_ms;
    EngineWorld world(40, scribe_config);
    std::vector<double> speeds(40, 1.0);
    speeds[2] = 0.001;
    world.engine->SetSpeedFactors(speeds);
    auto config = BaseApp("semisync", 4);
    // A model large enough that the straggler's compute time dwarfs round latency.
    config.model_factory = [](uint64_t seed) { return MakeMlp("m", 16, 128, 4, seed); };
    auto [workers, shards] = MakeWorkload(10, 740);
    const NodeId topic =
        world.engine->LaunchApp(config, workers, std::move(shards), MakeTest(740));
    world.engine->StartAll();
    EXPECT_TRUE(world.engine->RunToCompletion(1e9));
    return world.engine->result(topic).total_time_ms;
  };
  const double semi_sync = run(120.0);
  const double full_sync = run(0.0);
  EXPECT_LT(semi_sync, full_sync * 0.5);
}

// ---------- Egress filter (administrative isolation on the wire) ----------

TEST(EgressFilterTest, BlocksCrossZonePacketsAtTheBoundary) {
  Simulator sim;
  NetworkConfig net_config;
  net_config.model_bandwidth = false;
  Network net(&sim, std::make_unique<PairwiseUniformLatency>(1.0, 5.0, 11), net_config);
  MultiRingConfig ring_config;
  ring_config.zone_bits = 2;
  MultiRing rings(&net, ring_config);
  Rng rng(750);
  for (ZoneId z = 0; z < 2; ++z) {
    for (int i = 0; i < 30; ++i) {
      rings.AddNodeInZone(z, rng);
    }
  }
  rings.Build(rng);
  // Zone-0 administrators install a deny-egress policy on their nodes.
  const auto policy = IsolateZoneBoundaryPolicy(2);
  for (size_t i = 0; i < rings.pastry().size(); ++i) {
    if (rings.zone_of_node(i) == 0) {
      PastryNode& node = rings.pastry().node(i);
      node.SetEgressFilter([&policy](const NodeId& key) { return policy(key, 0); });
    }
    rings.pastry().node(i).SetDeliverHandler(910,
                                             [](const NodeId&, const Message&, int) {});
  }
  int delivered_in_zone1 = 0;
  for (size_t i = 0; i < rings.pastry().size(); ++i) {
    if (rings.zone_of_node(i) == 1) {
      rings.pastry().node(i).SetDeliverHandler(
          910, [&](const NodeId&, const Message&, int) { ++delivered_in_zone1; });
    }
  }
  // A zone-0 node tries to route packets keyed into zone 1: the egress filter drops
  // them at the source.
  const auto zone0_nodes = rings.NodesInZone(0);
  for (int t = 0; t < 10; ++t) {
    Message m;
    m.type = 910;
    rings.pastry().node(zone0_nodes[0]).Route(RandomZonedId(1, 2, rng), std::move(m));
  }
  sim.Run();
  EXPECT_EQ(delivered_in_zone1, 0);
  EXPECT_GE(net.metrics().dropped_messages(), 10u);
  // Intra-zone traffic still flows.
  int delivered_in_zone0 = 0;
  for (size_t i = 0; i < rings.pastry().size(); ++i) {
    if (rings.zone_of_node(i) == 0) {
      rings.pastry().node(i).SetDeliverHandler(
          910, [&](const NodeId&, const Message&, int) { ++delivered_in_zone0; });
    }
  }
  for (int t = 0; t < 10; ++t) {
    Message m;
    m.type = 910;
    rings.pastry().node(zone0_nodes[0]).Route(RandomZonedId(0, 2, rng), std::move(m));
  }
  sim.Run();
  EXPECT_EQ(delivered_in_zone0, 10);
}

}  // namespace
}  // namespace totoro
