// EventQueue / EventFn unit tests: slot+generation cancellation semantics, slab reuse,
// and the zero-allocation steady state the simulator hot path depends on.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <memory>
#include <new>
#include <vector>

#include "src/sim/event_fn.h"
#include "src/sim/event_queue.h"

// Counts every global allocation so tests can assert "no heap traffic" across a
// steady-state schedule/fire loop. Counting is always on (it is one relaxed atomic
// increment); tests snapshot the counter around the region of interest.
static std::atomic<uint64_t> g_allocations{0};

void* operator new(size_t size) {
  ++g_allocations;
  if (void* p = std::malloc(size)) {
    return p;
  }
  throw std::bad_alloc();
}

void* operator new[](size_t size) { return operator new(size); }

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, size_t) noexcept { std::free(p); }
void operator delete[](void* p, size_t) noexcept { std::free(p); }

namespace totoro {
namespace {

// --- EventFn ---

TEST(EventFnTest, InlineCaptureDoesNotAllocate) {
  char payload[EventFn::kInlineSize - 8] = {1};
  int hits = 0;
  const uint64_t before = g_allocations.load();
  EventFn fn([&hits, payload]() { hits += payload[0]; });
  EXPECT_EQ(g_allocations.load(), before);
  fn();
  EXPECT_EQ(hits, 1);
}

TEST(EventFnTest, OversizedCaptureFallsBackToHeap) {
  char payload[EventFn::kInlineSize + 64] = {};
  payload[0] = 7;
  int result = 0;
  const uint64_t before = g_allocations.load();
  EventFn fn([&result, payload]() { result = payload[0]; });
  EXPECT_GT(g_allocations.load(), before);
  fn();
  EXPECT_EQ(result, 7);
}

TEST(EventFnTest, MoveOnlyCaptureSchedules) {
  auto owned = std::make_unique<int>(41);
  EventFn fn([p = std::move(owned)]() { ++*p; });
  EventFn moved = std::move(fn);
  EXPECT_FALSE(static_cast<bool>(fn));  // NOLINT(bugprone-use-after-move): move contract.
  EXPECT_TRUE(static_cast<bool>(moved));
  moved();
}

TEST(EventFnTest, DestructionRunsCaptureDestructors) {
  auto tracker = std::make_shared<int>(0);
  {
    EventFn fn([tracker]() {});
    EXPECT_EQ(tracker.use_count(), 2);
  }
  EXPECT_EQ(tracker.use_count(), 1);
}

// --- EventQueue ordering ---

TEST(EventQueueTest, PopsInTimeOrderWithFifoTieBreak) {
  EventQueue q;
  std::vector<int> order;
  q.Push(5.0, [&order]() { order.push_back(1); });
  q.Push(1.0, [&order]() { order.push_back(2); });
  q.Push(5.0, [&order]() { order.push_back(3); });  // Same time as #1: FIFO after it.
  q.Push(3.0, [&order]() { order.push_back(4); });
  SimTime at = 0.0;
  while (q.PopAndRun(&at)) {
  }
  EXPECT_EQ(order, (std::vector<int>{2, 4, 1, 3}));
}

TEST(EventQueueTest, PopNextMovesCallbackOut) {
  EventQueue q;
  auto owned = std::make_unique<int>(9);
  q.Push(1.0, [p = std::move(owned)]() { EXPECT_EQ(*p, 9); });
  SimTime at = 0.0;
  EventFn fn;
  ASSERT_TRUE(q.PopNext(&at, &fn));
  EXPECT_EQ(at, 1.0);
  fn();
  EXPECT_FALSE(q.PopNext(&at, &fn));
}

// --- Cancellation ---

TEST(EventQueueTest, CancelPreventsExecution) {
  EventQueue q;
  bool ran = false;
  EventHandle h = q.Push(1.0, [&ran]() { ran = true; });
  EXPECT_TRUE(h.Cancel());
  EXPECT_TRUE(h.IsCancelled());
  SimTime at = 0.0;
  EXPECT_FALSE(q.PopAndRun(&at));
  EXPECT_FALSE(ran);
  EXPECT_EQ(q.cancelled_total(), 1u);
}

TEST(EventQueueTest, CancelAfterFireIsNoOp) {
  EventQueue q;
  EventHandle h = q.Push(1.0, []() {});
  SimTime at = 0.0;
  EXPECT_TRUE(q.PopAndRun(&at));
  EXPECT_FALSE(h.Cancel());
  EXPECT_FALSE(h.IsCancelled());
  EXPECT_EQ(q.cancelled_total(), 0u);
}

TEST(EventQueueTest, SecondCancelReturnsFalse) {
  EventQueue q;
  EventHandle h = q.Push(1.0, []() {});
  EventHandle copy = h;
  EXPECT_TRUE(h.Cancel());
  EXPECT_FALSE(h.Cancel());
  EXPECT_FALSE(copy.Cancel());  // Copies target the same event.
  EXPECT_EQ(q.cancelled_total(), 1u);
}

TEST(EventQueueTest, HandleOutlivesQueue) {
  EventHandle h;
  {
    EventQueue q;
    h = q.Push(1.0, []() {});
  }
  EXPECT_FALSE(h.Cancel());
  EXPECT_FALSE(h.IsCancelled());
}

TEST(EventQueueTest, StaleHandleCannotCancelReusedSlot) {
  EventQueue q;
  EventHandle stale = q.Push(1.0, []() {});
  SimTime at = 0.0;
  EXPECT_TRUE(q.PopAndRun(&at));  // Slot released; generation bumped.
  bool second_ran = false;
  q.Push(2.0, [&second_ran]() { second_ran = true; });  // Reuses the slot.
  EXPECT_EQ(q.slab_size(), 1u);
  EXPECT_FALSE(stale.Cancel());  // Generation mismatch: must not kill the new tenant.
  EXPECT_TRUE(q.PopAndRun(&at));
  EXPECT_TRUE(second_ran);
}

// --- Slab reuse and steady-state allocation behaviour ---

TEST(EventQueueTest, SlabStaysFlatUnderChurn) {
  EventQueue q;
  for (int round = 0; round < 1000; ++round) {
    q.Push(static_cast<SimTime>(round), []() {});
    SimTime at = 0.0;
    ASSERT_TRUE(q.PopAndRun(&at));
  }
  EXPECT_EQ(q.slab_size(), 1u);  // One slot, reused 1000 times.
}

TEST(EventQueueTest, SteadyStateScheduleFireLoopIsAllocationFree) {
  EventQueue q;
  q.Reserve(64);
  // Warm up: materialize slab slots and heap capacity.
  for (int i = 0; i < 64; ++i) {
    q.Push(static_cast<SimTime>(i), []() {});
  }
  SimTime at = 0.0;
  while (q.PopAndRun(&at)) {
  }

  const uint64_t before = g_allocations.load();
  int fired = 0;
  for (int round = 0; round < 10000; ++round) {
    // A capture representative of the delivery closure: well within kInlineSize.
    char payload[48] = {};
    payload[0] = static_cast<char>(round);
    q.Push(static_cast<SimTime>(round), [&fired, payload]() { fired += 1 + 0 * payload[0]; });
    if (round % 2 == 1) {  // Drain in pairs to exercise heap sift paths.
      ASSERT_TRUE(q.PopAndRun(&at));
      ASSERT_TRUE(q.PopAndRun(&at));
    }
  }
  while (q.PopAndRun(&at)) {
  }
  EXPECT_EQ(fired, 10000);
  EXPECT_EQ(g_allocations.load(), before) << "steady-state schedule/fire loop allocated";
}

TEST(EventQueueTest, CancelChurnIsAllocationFreeAfterWarmup) {
  EventQueue q;
  q.Reserve(16);
  for (int i = 0; i < 16; ++i) {
    q.Push(static_cast<SimTime>(i), []() {});
  }
  SimTime at = 0.0;
  while (q.PopAndRun(&at)) {
  }

  const uint64_t before = g_allocations.load();
  for (int round = 0; round < 1000; ++round) {
    EventHandle h = q.Push(static_cast<SimTime>(round), []() {});
    EventHandle keep = q.Push(static_cast<SimTime>(round) + 0.5, []() {});
    EXPECT_TRUE(h.Cancel());
    ASSERT_TRUE(q.PopAndRun(&at));  // Skips the cancelled event, runs `keep`.
    (void)keep;
  }
  EXPECT_EQ(g_allocations.load(), before) << "cancel churn allocated";
  EXPECT_EQ(q.cancelled_total(), 1000u);
}

}  // namespace
}  // namespace totoro
