// Differential fuzzing of U128 against the compiler's native unsigned __int128.
//
// Every arithmetic, comparison, shift and digit operation is checked against the native
// type on random inputs (including adversarial patterns: all-ones, single bits, values
// straddling the 64-bit word boundary).
#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/common/u128.h"

namespace totoro {
namespace {

using Native = unsigned __int128;

Native ToNative(const U128& v) {
  return (static_cast<Native>(v.hi()) << 64) | v.lo();
}

class U128FuzzTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  // Mix of uniform values and adversarial patterns.
  U128 NextValue(Rng& rng) {
    switch (rng.NextBelow(6)) {
      case 0:
        return U128(rng.Next(), rng.Next());
      case 1:
        return U128(0, rng.Next());  // Low word only.
      case 2:
        return U128(rng.Next(), 0);  // High word only.
      case 3:
        return U128::Max();
      case 4: {
        const int bit = static_cast<int>(rng.NextBelow(128));
        return U128(0, 1) << bit;  // Single bit.
      }
      default:
        return U128(0, rng.NextBelow(4));  // Tiny.
    }
  }
};

TEST_P(U128FuzzTest, ArithmeticMatchesNative) {
  Rng rng(GetParam());
  for (int i = 0; i < 2000; ++i) {
    const U128 a = NextValue(rng);
    const U128 b = NextValue(rng);
    const Native na = ToNative(a);
    const Native nb = ToNative(b);
    EXPECT_EQ(ToNative(a + b), static_cast<Native>(na + nb));
    EXPECT_EQ(ToNative(a - b), static_cast<Native>(na - nb));
    EXPECT_EQ(ToNative(a & b), static_cast<Native>(na & nb));
    EXPECT_EQ(ToNative(a | b), static_cast<Native>(na | nb));
    EXPECT_EQ(ToNative(a ^ b), static_cast<Native>(na ^ nb));
    EXPECT_EQ(ToNative(~a), static_cast<Native>(~na));
    EXPECT_EQ(a < b, na < nb);
    EXPECT_EQ(a <= b, na <= nb);
    EXPECT_EQ(a == b, na == nb);
    EXPECT_EQ(a > b, na > nb);
  }
}

TEST_P(U128FuzzTest, ShiftsMatchNative) {
  Rng rng(GetParam() ^ 0x11);
  for (int i = 0; i < 2000; ++i) {
    const U128 a = NextValue(rng);
    const Native na = ToNative(a);
    const int s = static_cast<int>(rng.NextBelow(128));  // Native UB at >= 128.
    EXPECT_EQ(ToNative(a << s), static_cast<Native>(na << s)) << "<< " << s;
    EXPECT_EQ(ToNative(a >> s), static_cast<Native>(na >> s)) << ">> " << s;
  }
  // Our type defines shifts >= 128 as zero (useful for digit math); verify explicitly.
  EXPECT_EQ(U128::Max() << 128, U128(0, 0));
  EXPECT_EQ(U128::Max() >> 128, U128(0, 0));
  EXPECT_EQ(U128::Max() << 200, U128(0, 0));
}

TEST_P(U128FuzzTest, DigitsReassembleTheValue) {
  Rng rng(GetParam() ^ 0x22);
  for (int bits : {1, 2, 4, 8}) {
    const int digits = 128 / bits;
    for (int i = 0; i < 200; ++i) {
      const U128 a = NextValue(rng);
      Native reassembled = 0;
      for (int d = 0; d < digits; ++d) {
        reassembled = (reassembled << bits) | a.Digit(d, bits);
      }
      EXPECT_EQ(reassembled, ToNative(a)) << "bits=" << bits;
    }
  }
}

TEST_P(U128FuzzTest, CommonPrefixDigitsIsConsistentWithDigits) {
  Rng rng(GetParam() ^ 0x33);
  for (int i = 0; i < 500; ++i) {
    const U128 a = NextValue(rng);
    const U128 b = NextValue(rng);
    const int prefix = a.CommonPrefixDigits(b, 4);
    for (int d = 0; d < prefix; ++d) {
      EXPECT_EQ(a.Digit(d, 4), b.Digit(d, 4));
    }
    if (prefix < 32) {
      EXPECT_NE(a.Digit(prefix, 4), b.Digit(prefix, 4));
    } else {
      EXPECT_EQ(a, b);
    }
  }
}

TEST_P(U128FuzzTest, RingDistanceIsSymmetricMinimalArc) {
  Rng rng(GetParam() ^ 0x44);
  for (int i = 0; i < 1000; ++i) {
    const U128 a = NextValue(rng);
    const U128 b = NextValue(rng);
    const Native na = ToNative(a);
    const Native nb = ToNative(b);
    const Native d1 = na - nb;
    const Native d2 = nb - na;
    const Native expected = d1 < d2 ? d1 : d2;
    EXPECT_EQ(ToNative(U128::RingDistance(a, b)), expected);
    EXPECT_EQ(U128::RingDistance(a, b), U128::RingDistance(b, a));
  }
}

TEST_P(U128FuzzTest, HexRoundTripsRandomValues) {
  Rng rng(GetParam() ^ 0x55);
  for (int i = 0; i < 500; ++i) {
    const U128 a = NextValue(rng);
    EXPECT_EQ(U128::FromHex(a.ToHex()), a);
  }
}

TEST_P(U128FuzzTest, Hash64SpreadsValues) {
  Rng rng(GetParam() ^ 0x66);
  std::set<uint64_t> hashes;
  const int n = 2000;
  for (int i = 0; i < n; ++i) {
    hashes.insert(U128(rng.Next(), rng.Next()).Hash64());
  }
  EXPECT_EQ(hashes.size(), static_cast<size_t>(n));  // No collisions at this scale.
}

INSTANTIATE_TEST_SUITE_P(Seeds, U128FuzzTest, ::testing::Range<uint64_t>(500, 506));

}  // namespace
}  // namespace totoro
