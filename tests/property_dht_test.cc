// Property-style tests of the DHT layer, swept over overlay sizes and routing bases.
//
// Invariants checked on every (N, b, seed) combination:
//   - routed messages always reach the node numerically closest to the key
//   - hop counts respect the ceil(log_{2^b} N) + slack bound
//   - routing-table entries always sit at (row = shared prefix, col = next digit)
//   - leaf sets hold exactly the nearest ring neighbors
#include <gtest/gtest.h>

#include <cmath>

#include "src/dht/pastry_network.h"
#include "src/faultsim/fault_injector.h"
#include "src/faultsim/fault_script.h"
#include "src/faultsim/invariant_checker.h"
#include "src/obs/export.h"
#include "src/obs/metrics_registry.h"
#include "src/obs/trace.h"
#include "src/pubsub/forest.h"

namespace totoro {
namespace {

struct OverlayParams {
  size_t n;
  int bits;
  uint64_t seed;
};

void PrintTo(const OverlayParams& p, std::ostream* os) {
  *os << "N=" << p.n << " b=" << p.bits << " seed=" << p.seed;
}

class OverlayPropertyTest : public ::testing::TestWithParam<OverlayParams> {
 protected:
  void SetUp() override {
    const auto p = GetParam();
    NetworkConfig net_config;
    net_config.model_bandwidth = false;
    net_ = std::make_unique<Network>(
        &sim_, std::make_unique<PairwiseUniformLatency>(1.0, 20.0, p.seed), net_config);
    PastryConfig config;
    config.bits_per_digit = p.bits;
    pastry_ = std::make_unique<PastryNetwork>(net_.get(), config);
    Rng rng(p.seed);
    for (size_t i = 0; i < p.n; ++i) {
      pastry_->AddRandomNode(rng);
    }
    pastry_->BuildOracle(rng);
  }

  Simulator sim_;
  std::unique_ptr<Network> net_;
  std::unique_ptr<PastryNetwork> pastry_;
};

TEST_P(OverlayPropertyTest, EveryRouteReachesTheClosestNodeWithinHopBound) {
  const auto p = GetParam();
  Rng rng(p.seed + 1);
  NodeId delivered_at;
  int delivered_hops = -1;
  for (size_t i = 0; i < pastry_->size(); ++i) {
    pastry_->node(i).SetDeliverHandler(500, [&, i](const NodeId&, const Message&, int hops) {
      delivered_at = pastry_->node(i).id();
      delivered_hops = hops;
    });
  }
  const int hop_bound =
      static_cast<int>(std::ceil(std::log2(static_cast<double>(p.n)) / p.bits)) + 2;
  for (int t = 0; t < 30; ++t) {
    const NodeId key = RandomNodeId(rng);
    PastryNode& origin = pastry_->node(rng.NextBelow(pastry_->size()));
    delivered_hops = -1;
    Message m;
    m.type = 500;
    origin.Route(key, std::move(m));
    sim_.Run();
    ASSERT_GE(delivered_hops, 0);
    EXPECT_EQ(delivered_at, pastry_->ClosestLiveNode(key)->id());
    EXPECT_LE(delivered_hops, hop_bound);
  }
}

TEST_P(OverlayPropertyTest, RoutingTableEntriesSitAtCorrectSlots) {
  const auto p = GetParam();
  for (size_t i = 0; i < pastry_->size(); ++i) {
    const PastryNode& node = pastry_->node(i);
    const NodeId self = node.id();
    node.routing_table().ForEach([&](const RouteEntry& e) {
      const int row = self.CommonPrefixDigits(e.id, p.bits);
      const uint32_t col = e.id.Digit(row, p.bits);
      const auto slot = node.routing_table().Get(row, col);
      ASSERT_TRUE(slot.has_value());
      EXPECT_EQ(slot->id, e.id);
      EXPECT_NE(col, self.Digit(row, p.bits));
    });
  }
}

TEST_P(OverlayPropertyTest, LeafSetsHoldExactRingNeighbors) {
  // Collect all ids sorted; every node's immediate cw/ccw leaf must be its true ring
  // successor/predecessor.
  std::vector<NodeId> sorted;
  for (size_t i = 0; i < pastry_->size(); ++i) {
    sorted.push_back(pastry_->node(i).id());
  }
  std::sort(sorted.begin(), sorted.end());
  auto successor = [&](const NodeId& id) {
    auto it = std::upper_bound(sorted.begin(), sorted.end(), id);
    return it == sorted.end() ? sorted.front() : *it;
  };
  for (size_t i = 0; i < pastry_->size(); ++i) {
    const PastryNode& node = pastry_->node(i);
    const auto cw = node.leaf_set().CwNeighbor();
    ASSERT_TRUE(cw.has_value());
    EXPECT_EQ(cw->id, successor(node.id()))
        << "node " << node.id().ToHex() << " has wrong successor";
  }
}

TEST_P(OverlayPropertyTest, RoutingIsDeterministic) {
  const auto p = GetParam();
  Rng rng(p.seed + 9);
  const NodeId key = RandomNodeId(rng);
  PastryNode& origin = pastry_->node(0);
  // The pure next-hop decision must be stable under repetition.
  const RouteEntry first = origin.ComputeNextHop(key);
  for (int i = 0; i < 5; ++i) {
    const RouteEntry again = origin.ComputeNextHop(key);
    EXPECT_EQ(again.id, first.id);
    EXPECT_EQ(again.host, first.host);
  }
}

INSTANTIATE_TEST_SUITE_P(Grid, OverlayPropertyTest,
                         ::testing::Values(OverlayParams{30, 4, 1}, OverlayParams{100, 4, 2},
                                           OverlayParams{100, 3, 3}, OverlayParams{300, 2, 4},
                                           OverlayParams{300, 5, 5},
                                           OverlayParams{1000, 4, 6},
                                           OverlayParams{2000, 3, 7}));

// ---------- Leaf-set randomized invariants ----------

class LeafSetFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(LeafSetFuzzTest, InsertOnlyPhaseHoldsExactNearestNeighbors) {
  // Without removals the clockwise side is exactly the 4 clockwise-nearest candidates
  // ever offered, in order.
  Rng rng(GetParam());
  const NodeId self = RandomNodeId(rng);
  LeafSet ls(self, 8);
  std::vector<RouteEntry> inserted;
  for (int op = 0; op < 200; ++op) {
    RouteEntry e{RandomNodeId(rng), static_cast<HostId>(op), 0.0};
    if (e.id == self) {
      continue;
    }
    ls.Consider(e);
    inserted.push_back(e);
    std::sort(inserted.begin(), inserted.end(), [&](const RouteEntry& a, const RouteEntry& b) {
      return U128::ClockwiseDistance(self, a.id) < U128::ClockwiseDistance(self, b.id);
    });
    const auto cw = ls.clockwise();
    const size_t expect = std::min<size_t>(4, inserted.size());
    ASSERT_EQ(cw.size(), expect);
    for (size_t i = 0; i < expect; ++i) {
      EXPECT_EQ(cw[i].id, inserted[i].id) << "cw slot " << i << " after op " << op;
    }
  }
}

TEST_P(LeafSetFuzzTest, MixedOpsKeepStructuralInvariants) {
  // With removals interleaved the set cannot resurrect evicted entries (that is what
  // leaf-set repair messages are for), but structural invariants must always hold:
  // sorted-by-distance sides, only offered ids present, capacity respected, and a
  // re-offered nearer candidate is always accepted.
  Rng rng(GetParam() ^ 0xF00D);
  const NodeId self = RandomNodeId(rng);
  LeafSet ls(self, 8);
  std::vector<RouteEntry> offered;
  for (int op = 0; op < 300; ++op) {
    if (!offered.empty() && rng.Bernoulli(0.25)) {
      const size_t victim = rng.NextBelow(offered.size());
      ls.Remove(offered[victim].id);
    } else {
      RouteEntry e{RandomNodeId(rng), static_cast<HostId>(op), 0.0};
      if (e.id == self) {
        continue;
      }
      ls.Consider(e);
      offered.push_back(e);
    }
    const auto cw = ls.clockwise();
    ASSERT_LE(cw.size(), 4u);
    for (size_t i = 1; i < cw.size(); ++i) {
      EXPECT_LT(U128::ClockwiseDistance(self, cw[i - 1].id),
                U128::ClockwiseDistance(self, cw[i].id))
          << "cw side out of order after op " << op;
    }
    for (const auto& e : cw) {
      const bool known = std::any_of(offered.begin(), offered.end(),
                                     [&](const RouteEntry& o) { return o.id == e.id; });
      EXPECT_TRUE(known);
    }
  }
  // A candidate strictly nearer than the current nearest always gets accepted.
  const auto cw = ls.clockwise();
  if (!cw.empty()) {
    const U128 nearest = U128::ClockwiseDistance(self, cw[0].id);
    if (nearest > U128(0, 1)) {
      const RouteEntry closer{self + U128(0, 1), 9999, 0.0};
      EXPECT_TRUE(ls.Consider(closer));
      EXPECT_EQ(ls.clockwise()[0].id, closer.id);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LeafSetFuzzTest, ::testing::Range<uint64_t>(40, 48));

// ---------- Churn sweep ----------

class ChurnSweepTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ChurnSweepTest, RoutingSurvivesThirtyPercentFailures) {
  Simulator sim;
  NetworkConfig net_config;
  net_config.model_bandwidth = false;
  Network net(&sim, std::make_unique<PairwiseUniformLatency>(1.0, 10.0, GetParam()),
              net_config);
  PastryNetwork pastry(&net, PastryConfig{});
  Rng rng(GetParam());
  for (int i = 0; i < 200; ++i) {
    pastry.AddRandomNode(rng);
  }
  pastry.BuildOracle(rng);
  pastry.FailRandomNodes(60, rng);
  int delivered = 0;
  int correct = 0;
  NodeId delivered_at;
  for (size_t i = 0; i < pastry.size(); ++i) {
    pastry.node(i).SetDeliverHandler(500, [&, i](const NodeId&, const Message&, int) {
      ++delivered;
      delivered_at = pastry.node(i).id();
    });
  }
  int sent = 0;
  for (int t = 0; t < 40; ++t) {
    PastryNode& origin = pastry.node(rng.NextBelow(pastry.size()));
    if (!origin.alive()) {
      continue;
    }
    const NodeId key = RandomNodeId(rng);
    PastryNode* expected = pastry.ClosestLiveNode(key);
    Message m;
    m.type = 500;
    origin.Route(key, std::move(m));
    sim.Run();
    ++sent;
    if (delivered == sent && delivered_at == expected->id()) {
      ++correct;
    }
  }
  EXPECT_EQ(delivered, sent);  // No message lost despite 30% dead nodes.
  // Liveness-aware fallback may occasionally deliver to the second-closest live node
  // when tables are stale; demand a high hit rate, not perfection.
  EXPECT_GE(correct, sent * 9 / 10);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChurnSweepTest, ::testing::Range<uint64_t>(60, 66));

// ---------- Randomized fault-script sweep (overlay level) ----------

struct OverlayFaultOutcome {
  size_t violations = 0;
  int routed = 0;
  int correct = 0;
  std::string metrics_json;
};

// Runs a random-but-seeded fault script against a bare overlay (no trees), then checks
// the ring invariant and routing correctness after the convergence tail.
OverlayFaultOutcome RunOverlayFaultTrial(uint64_t seed) {
  GlobalMetrics().ResetValues();
  OverlayFaultOutcome out;
  {
    Simulator sim;
    NetworkConfig net_config;
    net_config.model_bandwidth = false;
    Network net(&sim, std::make_unique<PairwiseUniformLatency>(1.0, 10.0, seed), net_config);
    PastryConfig pastry_config;
    pastry_config.enable_keepalive = true;
    pastry_config.keepalive_interval_ms = 200.0;
    pastry_config.keepalive_timeout_ms = 700.0;
    PastryNetwork pastry(&net, pastry_config);
    Rng rng(seed);
    const size_t n = 60;
    for (size_t i = 0; i < n; ++i) {
      pastry.AddRandomNode(rng);
    }
    pastry.BuildOracle(rng);
    for (size_t i = 0; i < pastry.size(); ++i) {
      pastry.node(i).StartKeepAlive();
    }
    // The checker needs a forest even when no topic is watched; keep it empty.
    Forest forest(&pastry, ScribeConfig{});

    FaultInjector injector(&pastry, &forest, seed + 1);
    InvariantCheckerConfig checker_config;
    checker_config.convergence_grace_ms = 9000.0;
    InvariantChecker checker(&pastry, &forest, checker_config);
    checker.SetFaultInjector(&injector);
    checker.Start();

    Rng script_rng(seed + 2);
    const double duration = 15000.0;
    RandomScriptOptions opts;
    opts.max_crashes = 3;
    const FaultScript script = GenerateRandomFaultScript(script_rng, n, duration, opts);
    injector.Schedule(script);
    sim.RunFor(duration + 10000.0);
    checker.CheckConverged();
    checker.Stop();
    out.violations = checker.violations().size();
    if (!checker.violations().empty()) {
      ADD_FAILURE() << "first violation: " << checker.violations()[0].invariant << " ("
                    << checker.violations()[0].detail << ") at t="
                    << checker.violations()[0].at;
    }

    // Routing ground truth after recovery: every delivery lands on the closest live
    // node (all crashed hosts have rejoined, so the whole ring is live again).
    NodeId delivered_at;
    int delivered = 0;
    for (size_t i = 0; i < pastry.size(); ++i) {
      pastry.node(i).SetDeliverHandler(500, [&, i](const NodeId&, const Message&, int) {
        ++delivered;
        delivered_at = pastry.node(i).id();
      });
    }
    Rng probe_rng(seed + 3);
    for (int t = 0; t < 25; ++t) {
      const NodeId key = RandomNodeId(probe_rng);
      PastryNode& origin = pastry.node(probe_rng.NextBelow(pastry.size()));
      if (!origin.alive()) {
        continue;
      }
      const int before = delivered;
      Message m;
      m.type = 500;
      origin.Route(key, std::move(m));
      sim.RunFor(500.0);
      ++out.routed;
      if (delivered == before + 1 && delivered_at == pastry.ClosestLiveNode(key)->id()) {
        ++out.correct;
      }
    }
  }
  out.metrics_json = MetricsToJson(GlobalMetrics());
  GlobalMetrics().ResetValues();
  return out;
}

class OverlayFaultSweepTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(OverlayFaultSweepTest, RingRecoversRoutesCorrectlyAndReplaysBitIdentically) {
  const OverlayFaultOutcome a = RunOverlayFaultTrial(GetParam());
  EXPECT_EQ(a.violations, 0u);
  ASSERT_GT(a.routed, 0);
  EXPECT_EQ(a.correct, a.routed) << "post-recovery routing missed the rendezvous node";
  const OverlayFaultOutcome b = RunOverlayFaultTrial(GetParam());
  EXPECT_EQ(a.violations, b.violations);
  EXPECT_EQ(a.correct, b.correct);
  EXPECT_EQ(a.metrics_json, b.metrics_json) << "metrics export differs between replays";
}

INSTANTIATE_TEST_SUITE_P(Seeds, OverlayFaultSweepTest, ::testing::Range<uint64_t>(150, 153));

}  // namespace
}  // namespace totoro
