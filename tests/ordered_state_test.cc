// Regression tests for the unordered→ordered container fixes behind totoro_lint rule
// R2: protocol state whose iteration order feeds event scheduling (scribe topics_,
// engine apps_/trainers, hierarchical per-edge fan-out) must walk in key order, and
// runs over that state must reproduce byte-identical observability exports — the same
// byte-equal export pattern as compute_pool_test.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "src/baselines/hierarchical_engine.h"
#include "src/core/engine.h"
#include "src/ml/dataset.h"
#include "src/obs/export.h"
#include "src/pubsub/forest.h"

namespace totoro {
namespace {

// --- Direct walk-order contracts ----------------------------------------------------

TEST(OrderedStateTest, ScribeTopicsIterateInKeyOrder) {
  // Subscribe one overlay to many topics in scrambled insertion order; every node's
  // per-topic walk (Topics() uses the same map MaintenanceTick iterates) must come
  // back sorted by topic key, not by insertion order or hash placement.
  Simulator sim;
  Network net(&sim, std::make_unique<PairwiseUniformLatency>(1.0, 10.0, 11), NetworkConfig{});
  PastryNetwork pastry(&net, PastryConfig{});
  Rng rng(11);
  for (int i = 0; i < 30; ++i) {
    pastry.AddRandomNode(rng);
  }
  pastry.BuildOracle(rng);
  Forest forest(&pastry, ScribeConfig{});

  std::vector<NodeId> topics;
  for (int t = 0; t < 12; ++t) {
    // Scrambled names so key order differs from creation order.
    topics.push_back(forest.CreateTopic("app-" + std::to_string((t * 7) % 12)));
  }
  for (const NodeId& topic : topics) {
    forest.SubscribeAll(topic, {0, 1, 2, 3, 4, 5, 6, 7}, 0.0);
  }
  size_t nodes_with_many_topics = 0;
  for (size_t i = 0; i < forest.size(); ++i) {
    const std::vector<NodeId> walk = forest.scribe(i).Topics();
    if (walk.size() >= 2) {
      ++nodes_with_many_topics;
    }
    EXPECT_TRUE(std::is_sorted(walk.begin(), walk.end()))
        << "scribe node " << i << " iterates topics out of key order";
  }
  // The contract must actually have been exercised on multi-topic nodes.
  EXPECT_GT(nodes_with_many_topics, 0u);
}

// --- Byte-equal export regression (multi-app engine) --------------------------------

FlAppConfig SmallApp(const std::string& name) {
  FlAppConfig config;
  config.name = name;
  config.model_factory = [](uint64_t seed) {
    return MakeSoftmaxRegression("sr", 8, 3, seed);
  };
  config.train.learning_rate = 0.2f;
  config.train.batch_size = 10;
  config.train.local_steps = 2;
  config.max_rounds = 3;
  return config;
}

struct Artifacts {
  std::string trace;
  std::string metrics;
  std::vector<AppResult> results;
};

// Three concurrent applications over one overlay with tree maintenance running: the
// scheduling paths that iterate apps_ (StartAll, watchdog) and topics_ (maintenance
// heartbeats) all fire. Any hash-order dependence in those walks shows up as a trace
// or metrics byte diff between two identical runs.
Artifacts RunMultiAppWorld() {
  GlobalTracer().Clear();
  GlobalTracer().SetEnabled(true);
  GlobalMetrics().ResetValues();
  Artifacts out;
  {
    Simulator sim;
    Network net(&sim, std::make_unique<PairwiseUniformLatency>(1.0, 10.0, 5), NetworkConfig{});
    PastryNetwork pastry(&net, PastryConfig{});
    Rng rng(42);
    for (int i = 0; i < 40; ++i) {
      pastry.AddRandomNode(rng);
    }
    pastry.BuildOracle(rng);
    ScribeConfig scribe_config;
    scribe_config.enable_tree_repair = true;
    Forest forest(&pastry, scribe_config);
    TotoroEngine engine(&forest, ComputeModel{}, 43);
    engine.SetSubscribeSettleMs(300.0);
    TotoroEngine::FailoverConfig failover;
    engine.EnableFailover(failover);

    SyntheticSpec spec;
    spec.dim = 8;
    spec.num_classes = 3;
    spec.seed = 7;
    SyntheticTask task(spec);
    Rng data_rng(8);
    std::vector<NodeId> topics;
    for (int a = 0; a < 3; ++a) {
      std::vector<size_t> workers;
      std::vector<Dataset> shards;
      for (size_t w = 0; w < 6; ++w) {
        workers.push_back(a * 6 + static_cast<size_t>(w));
        shards.push_back(task.Generate(40, data_rng));
      }
      topics.push_back(engine.LaunchApp(SmallApp("app-" + std::to_string(a)), workers,
                                        std::move(shards), task.Generate(60, data_rng)));
    }
    forest.StartMaintenance();
    engine.StartAll();
    EXPECT_TRUE(engine.RunToCompletion(120000.0));
    for (const NodeId& topic : topics) {
      out.results.push_back(engine.result(topic));
    }
  }
  out.trace = TraceToChromeJson(GlobalTracer());
  out.metrics = MetricsToJson(GlobalMetrics());
  GlobalTracer().SetEnabled(false);
  GlobalTracer().Clear();
  GlobalMetrics().ResetValues();
  return out;
}

TEST(OrderedStateTest, MultiAppMaintenanceRunExportsAreByteIdentical) {
  const Artifacts a = RunMultiAppWorld();
  const Artifacts b = RunMultiAppWorld();
  EXPECT_EQ(a.trace, b.trace) << "multi-app trace export not reproducible";
  EXPECT_EQ(a.metrics, b.metrics) << "multi-app metrics export not reproducible";
  EXPECT_EQ(FingerprintBytes(a.trace), FingerprintBytes(b.trace));
  ASSERT_EQ(a.results.size(), b.results.size());
  for (size_t i = 0; i < a.results.size(); ++i) {
    EXPECT_EQ(a.results[i].rounds_completed, b.results[i].rounds_completed);
    EXPECT_EQ(a.results[i].final_accuracy, b.results[i].final_accuracy);
    EXPECT_EQ(a.results[i].total_time_ms, b.results[i].total_time_ms);
  }
}

// --- Byte-equal regression for the hierarchical baseline's per-edge fan-out ---------

std::pair<std::string, std::vector<AppResult>> RunHierarchicalWorld() {
  GlobalMetrics().ResetValues();
  Simulator sim;
  HierarchicalConfig config;
  config.num_edge_servers = 4;
  HierarchicalEngine engine(&sim, config, 20, 99);

  SyntheticSpec spec;
  spec.dim = 8;
  spec.num_classes = 3;
  spec.seed = 3;
  SyntheticTask task(spec);
  Rng data_rng(4);
  std::vector<size_t> clients;
  std::vector<Dataset> shards;
  for (size_t c = 0; c < 20; ++c) {
    clients.push_back(c);
    shards.push_back(task.Generate(40, data_rng));
  }
  const NodeId topic = engine.LaunchApp(SmallApp("hier"), clients, std::move(shards),
                                        task.Generate(60, data_rng));
  engine.StartAll();
  EXPECT_TRUE(engine.RunToCompletion());
  std::pair<std::string, std::vector<AppResult>> out{MetricsToJson(GlobalMetrics()),
                                                     {engine.result(topic)}};
  GlobalMetrics().ResetValues();
  return out;
}

TEST(OrderedStateTest, HierarchicalEdgeFanoutIsReproducible) {
  const auto a = RunHierarchicalWorld();
  const auto b = RunHierarchicalWorld();
  EXPECT_EQ(a.first, b.first) << "hierarchical metrics export not reproducible";
  ASSERT_EQ(a.second.size(), b.second.size());
  EXPECT_EQ(a.second[0].final_accuracy, b.second[0].final_accuracy);
  EXPECT_EQ(a.second[0].total_time_ms, b.second[0].total_time_ms);
}

}  // namespace
}  // namespace totoro
