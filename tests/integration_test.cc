// Cross-layer integration tests: Totoro engine vs the centralized baseline on identical
// workloads, and tree-aggregation consistency against flat averaging.
#include <gtest/gtest.h>

#include "src/baselines/central_engine.h"
#include "src/core/engine.h"

namespace totoro {
namespace {

SyntheticSpec Task(uint64_t seed) {
  SyntheticSpec spec;
  spec.dim = 16;
  spec.num_classes = 4;
  spec.class_separation = 2.0;
  spec.noise_stddev = 1.0;
  spec.seed = seed;
  return spec;
}

FlAppConfig App(const std::string& name, size_t max_rounds) {
  FlAppConfig config;
  config.name = name;
  config.model_factory = [](uint64_t seed) {
    return MakeMlp("mlp", 16, 32, 4, seed);
  };
  config.train.learning_rate = 0.1f;
  config.train.batch_size = 20;
  config.train.local_steps = 5;
  config.target_accuracy = 2.0;
  config.max_rounds = max_rounds;
  return config;
}

// Runs `num_apps` concurrent apps on Totoro; returns the max total time.
double RunTotoro(int num_apps, size_t rounds) {
  Simulator sim;
  Network net(&sim, std::make_unique<PairwiseUniformLatency>(2.0, 40.0, 9), NetworkConfig{});
  PastryNetwork pastry(&net, PastryConfig{});
  Rng rng(200);
  for (int i = 0; i < 120; ++i) {
    pastry.AddRandomNode(rng);
  }
  pastry.BuildOracle(rng);
  Forest forest(&pastry, ScribeConfig{});
  TotoroEngine engine(&forest, ComputeModel{}, 201);
  Rng data_rng(202);
  std::vector<NodeId> topics;
  for (int a = 0; a < num_apps; ++a) {
    SyntheticTask task(Task(300 + a));
    std::vector<size_t> workers;
    std::vector<Dataset> shards;
    for (size_t i = 0; i < 10; ++i) {
      workers.push_back((a * 10 + i) % 120);
      shards.push_back(task.Generate(80, data_rng));
    }
    topics.push_back(engine.LaunchApp(App("app-" + std::to_string(a), rounds), workers,
                                      std::move(shards), task.Generate(100, data_rng)));
  }
  engine.StartAll();
  EXPECT_TRUE(engine.RunToCompletion());
  double max_time = 0;
  for (const auto& t : topics) {
    max_time = std::max(max_time, engine.result(t).total_time_ms);
  }
  return max_time;
}

double RunCentral(int num_apps, size_t rounds) {
  Simulator sim;
  CentralizedEngine central(&sim, CentralConfig{}, 120, 210);
  Rng data_rng(202);
  std::vector<NodeId> topics;
  for (int a = 0; a < num_apps; ++a) {
    SyntheticTask task(Task(300 + a));
    std::vector<size_t> clients;
    std::vector<Dataset> shards;
    for (size_t i = 0; i < 10; ++i) {
      clients.push_back((a * 10 + i) % 120);
      shards.push_back(task.Generate(80, data_rng));
    }
    topics.push_back(central.LaunchApp(App("app-" + std::to_string(a), rounds), clients,
                                       std::move(shards), task.Generate(100, data_rng)));
  }
  central.StartAll();
  EXPECT_TRUE(central.RunToCompletion());
  double max_time = 0;
  for (const auto& t : topics) {
    max_time = std::max(max_time, central.result(t).total_time_ms);
  }
  return max_time;
}

TEST(TotoroVsCentralTest, TotoroStaysFlatWithAppCount) {
  const double one = RunTotoro(1, 3);
  const double ten = RunTotoro(10, 3);
  // Independent trees: adding applications barely moves the per-app completion time
  // (paper §7.4: 15.41h for 1 model vs 15.47h for 20).
  EXPECT_LT(ten, one * 1.6);
}

TEST(TotoroVsCentralTest, CentralGrowsWithAppCount) {
  const double one = RunCentral(1, 3);
  const double ten = RunCentral(10, 3);
  EXPECT_GT(ten, one * 2.0);
}

TEST(TotoroVsCentralTest, SpeedupGapWidensWithMoreApps) {
  // The Table-3 trend: Totoro's advantage grows as concurrency rises.
  const double speedup_small = RunCentral(2, 2) / RunTotoro(2, 2);
  const double speedup_large = RunCentral(10, 2) / RunTotoro(10, 2);
  EXPECT_GT(speedup_large, speedup_small);
  EXPECT_GT(speedup_large, 1.0);
}

TEST(TreeAggregationConsistencyTest, TreeFedAvgEqualsFlatFedAvg) {
  // Push known weight vectors through a real 60-node tree and compare against a flat
  // FederatedAverage of the same contributions.
  Simulator sim;
  NetworkConfig net_config;
  net_config.model_bandwidth = false;
  Network net(&sim, std::make_unique<PairwiseUniformLatency>(1.0, 5.0, 11), net_config);
  PastryNetwork pastry(&net, PastryConfig{});
  Rng rng(400);
  for (int i = 0; i < 60; ++i) {
    pastry.AddRandomNode(rng);
  }
  pastry.BuildOracle(rng);
  Forest forest(&pastry, ScribeConfig{});
  for (size_t i = 0; i < forest.size(); ++i) {
    forest.scribe(i).SetCombineFn(MakeFedAvgCombiner());
  }
  const NodeId topic = forest.CreateTopic("consistency");
  std::vector<size_t> all(forest.size());
  for (size_t i = 0; i < all.size(); ++i) {
    all[i] = i;
  }
  forest.SubscribeAll(topic, all);

  std::vector<WeightedUpdate> flat;
  std::vector<float> tree_result;
  const size_t root = forest.RootOf(topic);
  forest.scribe(root).SetOnRootAggregate(
      [&](const NodeId&, uint64_t, const AggregationPiece& total) {
        tree_result = static_cast<const WeightsPayload*>(total.data.get())->weights;
      });
  Rng wrng(401);
  for (size_t i = 0; i < forest.size(); ++i) {
    std::vector<float> w(8);
    for (auto& v : w) {
      v = static_cast<float>(wrng.Gaussian(0.0, 1.0));
    }
    const double weight = 1.0 + static_cast<double>(wrng.NextBelow(5));
    flat.push_back({w, weight});
    auto payload = std::make_shared<WeightsPayload>();
    payload->weights = std::move(w);
    AggregationPiece piece;
    piece.data = std::move(payload);
    piece.weight = weight;
    forest.scribe(i).SubmitUpdate(topic, 1, std::move(piece), 32);
  }
  sim.Run();
  ASSERT_EQ(tree_result.size(), 8u);
  const auto expected = FederatedAverage(flat);
  for (size_t i = 0; i < 8; ++i) {
    EXPECT_NEAR(tree_result[i], expected[i], 2e-4f) << "coordinate " << i;
  }
}

TEST(TotoroVsCentralTest, BothConvergeToSimilarAccuracy) {
  // Same task, same hyperparameters: the two engines differ in *time*, not in final
  // model quality.
  Simulator sim1;
  Network net(&sim1, std::make_unique<PairwiseUniformLatency>(2.0, 20.0, 13), NetworkConfig{});
  PastryNetwork pastry(&net, PastryConfig{});
  Rng rng(500);
  for (int i = 0; i < 60; ++i) {
    pastry.AddRandomNode(rng);
  }
  pastry.BuildOracle(rng);
  Forest forest(&pastry, ScribeConfig{});
  TotoroEngine totoro_engine(&forest, ComputeModel{}, 501);

  Simulator sim2;
  CentralizedEngine central(&sim2, CentralConfig{}, 60, 502);

  SyntheticTask task(Task(503));
  Rng data_rng(504);
  std::vector<size_t> nodes;
  std::vector<Dataset> shards1;
  std::vector<Dataset> shards2;
  for (size_t i = 0; i < 12; ++i) {
    nodes.push_back(i);
    Dataset shard = task.Generate(100, data_rng);
    shards1.push_back(shard);
    shards2.push_back(shard);
  }
  const Dataset test = task.Generate(300, data_rng);
  const NodeId t1 =
      totoro_engine.LaunchApp(App("conv", 8), nodes, std::move(shards1), test);
  const NodeId t2 = central.LaunchApp(App("conv", 8), nodes, std::move(shards2), test);
  totoro_engine.StartAll();
  central.StartAll();
  ASSERT_TRUE(totoro_engine.RunToCompletion());
  ASSERT_TRUE(central.RunToCompletion());
  const double acc1 = totoro_engine.result(t1).final_accuracy;
  const double acc2 = central.result(t2).final_accuracy;
  EXPECT_GT(acc1, 0.6);
  EXPECT_GT(acc2, 0.6);
  EXPECT_NEAR(acc1, acc2, 0.12);
}

}  // namespace
}  // namespace totoro
