#include <gtest/gtest.h>

#include <cmath>

#include "src/bandit/kl_ucb.h"
#include "src/bandit/planner.h"

namespace totoro {
namespace {

TEST(BernoulliKlTest, ZeroWhenEqual) {
  EXPECT_DOUBLE_EQ(BernoulliKl(0.3, 0.3), 0.0);
  EXPECT_DOUBLE_EQ(BernoulliKl(0.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(BernoulliKl(1.0, 1.0), 0.0);
}

TEST(BernoulliKlTest, PositiveAndAsymmetric) {
  EXPECT_GT(BernoulliKl(0.2, 0.8), 0.0);
  EXPECT_GT(BernoulliKl(0.8, 0.2), 0.0);
  // Known value: KL(0.5, 0.25) = 0.5*ln2 + 0.5*ln(2/3).
  EXPECT_NEAR(BernoulliKl(0.5, 0.25), 0.5 * std::log(2.0) + 0.5 * std::log(2.0 / 3.0), 1e-12);
}

TEST(BernoulliKlTest, InfiniteAtDisagreeingBoundary) {
  EXPECT_TRUE(std::isinf(BernoulliKl(0.5, 0.0)));
  EXPECT_TRUE(std::isinf(BernoulliKl(0.5, 1.0)));
  EXPECT_TRUE(std::isinf(BernoulliKl(0.0, 1.0)));
}

TEST(KlUcbTest, ZeroTrialsFullyOptimistic) {
  EXPECT_DOUBLE_EQ(KlUcbUpperBound(0.0, 0, 1.0), 1.0);
}

TEST(KlUcbTest, BoundAboveEmpiricalMean) {
  for (double theta : {0.1, 0.5, 0.9}) {
    for (uint64_t t : {5ull, 50ull, 500ull}) {
      const double u = KlUcbUpperBound(theta, t, std::log(100.0));
      EXPECT_GE(u, theta);
      EXPECT_LE(u, 1.0);
    }
  }
}

TEST(KlUcbTest, BoundTightensWithTrials) {
  const double budget = std::log(1000.0);
  const double loose = KlUcbUpperBound(0.5, 10, budget);
  const double tight = KlUcbUpperBound(0.5, 1000, budget);
  EXPECT_GT(loose, tight);
  EXPECT_NEAR(KlUcbUpperBound(0.5, 100000000, budget), 0.5, 1e-3);
}

TEST(KlUcbTest, SatisfiesKlConstraint) {
  const uint64_t trials = 37;
  const double budget = std::log(500.0);
  const double u = KlUcbUpperBound(0.3, trials, budget);
  EXPECT_LE(trials * BernoulliKl(0.3, u), budget + 1e-6);
  // And u is (nearly) the largest such value.
  EXPECT_GT(trials * BernoulliKl(0.3, std::min(1.0, u + 1e-3)), budget);
}

TEST(KlUcbTest, LinkCostIsInverseBound) {
  const double cost = KlUcbLinkCost(0.5, 100, 50.0);
  const double u = KlUcbUpperBound(0.5, 100, std::log(50.0));
  EXPECT_NEAR(cost, 1.0 / u, 1e-9);
  EXPECT_GE(cost, 1.0);  // Delay can never beat one slot.
}

TEST(LinkGraphTest, LayeredGraphShape) {
  Rng rng(1);
  const LinkGraph g = LinkGraph::MakeLayered(2, 3, 0.2, 0.9, rng);
  EXPECT_EQ(g.num_nodes(), 2 + 2 * 3);
  // source->3, 3x3 between layers, 3->dest.
  EXPECT_EQ(g.num_links(), 3 + 9 + 3);
  for (int i = 0; i < g.num_links(); ++i) {
    EXPECT_GE(g.link(i).theta, 0.2);
    EXPECT_LE(g.link(i).theta, 0.9);
  }
}

TEST(LinkGraphTest, TrueShortestPathMinimizesExpectedDelay) {
  LinkGraph g(4);
  // Two routes 0->3: direct-ish via 1 (good links) and via 2 (bad links).
  g.AddLink(0, 1, 0.9);
  g.AddLink(1, 3, 0.9);
  g.AddLink(0, 2, 0.3);
  g.AddLink(2, 3, 0.3);
  const auto path = g.TrueShortestPath(0, 3);
  ASSERT_EQ(path.size(), 2u);
  EXPECT_EQ(g.link(path[0]).to, 1);
  EXPECT_NEAR(g.TruePathDelay(path), 2.0 / 0.9, 1e-12);
}

TEST(LinkGraphTest, CostToGoUnreachableIsInfinite) {
  LinkGraph g(3);
  g.AddLink(0, 1, 0.5);
  std::vector<double> w(1, 1.0);
  const auto cost = g.CostToGo(2, w);
  EXPECT_TRUE(std::isinf(cost[0]));
  EXPECT_TRUE(std::isinf(cost[1]));
  EXPECT_DOUBLE_EQ(cost[2], 0.0);
}

TEST(LinkGraphTest, EnumeratePathsFindsAllLoopFree) {
  Rng rng(2);
  const LinkGraph g = LinkGraph::MakeLayered(2, 2, 0.5, 0.9, rng);
  const auto paths = g.EnumeratePaths(0, g.num_nodes() - 1);
  // 2 * (2*2) = 8 distinct source->dest routes... actually 2 first hops x 2 second x 1
  // final each = 2*2 = 4 paths per first-layer node pairing: total 2*2=4? Enumerate:
  // source->L0(a or b)->L1(a or b)->dest = 2*2 = 4.
  EXPECT_EQ(paths.size(), 4u);
  for (const auto& p : paths) {
    EXPECT_EQ(p.size(), 3u);
  }
}

struct PolicyRegrets {
  double totoro = 0.0;
  double end_to_end = 0.0;
  double next_hop = 0.0;
  double optimal = 0.0;
};

PolicyRegrets RunAll(uint64_t packets, uint64_t seed) {
  Rng graph_rng(seed);
  const LinkGraph g = LinkGraph::MakeLayered(3, 3, 0.15, 0.95, graph_rng);
  const BanditNode s = 0;
  const BanditNode d = g.num_nodes() - 1;
  PolicyRegrets out;
  {
    auto policy = MakeTotoroHopByHop(&g, s, d);
    Rng rng(seed + 1);
    out.totoro = RunEpisode(g, s, d, *policy, packets, rng).FinalRegret();
  }
  {
    auto policy = MakeEndToEndLcb(&g, s, d);
    Rng rng(seed + 1);
    out.end_to_end = RunEpisode(g, s, d, *policy, packets, rng).FinalRegret();
  }
  {
    auto policy = MakeNextHopGreedy(&g, s, d);
    Rng rng(seed + 1);
    out.next_hop = RunEpisode(g, s, d, *policy, packets, rng).FinalRegret();
  }
  {
    auto policy = MakeOptimalOracle(&g, s, d);
    Rng rng(seed + 1);
    out.optimal = RunEpisode(g, s, d, *policy, packets, rng).FinalRegret();
  }
  return out;
}

TEST(PolicyTest, OracleRegretNearZero) {
  // The oracle's regret is pure sampling noise around zero.
  double total = 0.0;
  const int reps = 5;
  for (int r = 0; r < reps; ++r) {
    total += RunAll(2000, 100 + r).optimal;
  }
  // Mean per-packet regret across reps is tiny relative to path delay (~5 slots).
  EXPECT_LT(std::abs(total / reps) / 2000.0, 0.25);
}

TEST(PolicyTest, TotoroBeatsBaselines) {
  double totoro = 0.0;
  double e2e = 0.0;
  double nh = 0.0;
  const int reps = 5;
  for (int r = 0; r < reps; ++r) {
    const auto regrets = RunAll(3000, 200 + r);
    totoro += regrets.totoro;
    e2e += regrets.end_to_end;
    nh += regrets.next_hop;
  }
  EXPECT_LT(totoro, e2e);
  EXPECT_LT(totoro, nh);
}

TEST(PolicyTest, TotoroRegretSublinear) {
  // Cumulative regret growth slows down: the second half adds less than the first half.
  Rng graph_rng(7);
  const LinkGraph g = LinkGraph::MakeLayered(3, 3, 0.15, 0.95, graph_rng);
  auto policy = MakeTotoroHopByHop(&g, 0, g.num_nodes() - 1);
  Rng rng(8);
  const auto result = RunEpisode(g, 0, g.num_nodes() - 1, *policy, 4000, rng);
  const double first_half = result.cumulative_regret[1999];
  const double second_half = result.cumulative_regret[3999] - first_half;
  EXPECT_LT(second_half, first_half * 0.8);
}

TEST(PolicyTest, TotoroConvergesToOptimalPath) {
  Rng graph_rng(11);
  const LinkGraph g = LinkGraph::MakeLayered(2, 3, 0.2, 0.95, graph_rng);
  auto policy = MakeTotoroHopByHop(&g, 0, g.num_nodes() - 1);
  Rng rng(12);
  const auto result =
      RunEpisode(g, 0, g.num_nodes() - 1, *policy, 3000, rng, /*rank_paths=*/true);
  // In the last quarter, the optimal path (rank 0) dominates.
  size_t optimal_picks = 0;
  size_t tail = 0;
  for (size_t k = 2250; k < result.chosen_path_rank.size(); ++k) {
    ++tail;
    if (result.chosen_path_rank[k] == 0) {
      ++optimal_picks;
    }
  }
  EXPECT_GT(static_cast<double>(optimal_picks) / static_cast<double>(tail), 0.8);
}

TEST(PolicyTest, AblationPoliciesRun) {
  Rng graph_rng(13);
  const LinkGraph g = LinkGraph::MakeLayered(2, 2, 0.3, 0.9, graph_rng);
  const BanditNode d = g.num_nodes() - 1;
  std::vector<std::unique_ptr<PathPolicy>> policies;
  policies.push_back(MakeUcb1HopByHop(&g, 0, d));
  policies.push_back(MakeEpsGreedyHopByHop(&g, 0, d, 0.1, 99));
  for (const auto& maker : policies) {
    Rng rng(14);
    const auto result = RunEpisode(g, 0, d, *maker, 500, rng);
    EXPECT_EQ(result.per_packet_delay.size(), 500u);
    // Regret is finite and bounded by worst-path x packets.
    EXPECT_LT(result.FinalRegret(), 500.0 * 20.0);
  }
}

TEST(PlannerTest, FeedbackDelaysMatchGeometricAttempts) {
  LinkGraph g(2);
  g.AddLink(0, 1, 0.5);
  auto policy = MakeOptimalOracle(&g, 0, 1);
  Rng rng(15);
  const auto result = RunEpisode(g, 0, 1, *policy, 5000, rng);
  double mean = 0.0;
  for (double d : result.per_packet_delay) {
    EXPECT_GE(d, 1.0);
    mean += d;
  }
  mean /= static_cast<double>(result.per_packet_delay.size());
  EXPECT_NEAR(mean, 2.0, 0.1);  // Geometric(0.5) mean = 2 slots.
}

}  // namespace
}  // namespace totoro
