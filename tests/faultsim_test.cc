// Faultsim golden scenarios: scripted fault timelines executed against a live overlay
// with the InvariantChecker attached, asserting bounded recovery and zero protocol
// violations — and that every scenario replays bit-identically per seed.
#include <gtest/gtest.h>

#include <unordered_map>

#include "src/core/engine.h"
#include "src/faultsim/fault_injector.h"
#include "src/faultsim/fault_script.h"
#include "src/faultsim/invariant_checker.h"
#include "src/faultsim/recovery.h"
#include "src/obs/export.h"
#include "src/obs/metrics_registry.h"
#include "src/obs/trace.h"
#include "src/pubsub/forest.h"

namespace totoro {
namespace {

// ---------- FaultScript DSL ----------

TEST(FaultScriptTest, FlapExpandsToPairedFullLossWindows) {
  FaultScript script;
  script.FlapLinkAt(1000.0, 3, 7, /*burst_ms=*/50.0, /*gap_ms=*/150.0, /*bursts=*/4);
  const auto& events = script.events();
  ASSERT_EQ(events.size(), 8u);  // 4 begin/end pairs.
  for (int i = 0; i < 4; ++i) {
    const FaultEvent& begin = events[2 * i];
    const FaultEvent& end = events[2 * i + 1];
    EXPECT_EQ(begin.kind, FaultKind::kPerturbBegin);
    EXPECT_EQ(end.kind, FaultKind::kPerturbEnd);
    EXPECT_EQ(begin.perturb_id, end.perturb_id);
    EXPECT_DOUBLE_EQ(begin.at, 1000.0 + i * 200.0);
    EXPECT_DOUBLE_EQ(end.at, begin.at + 50.0);
    EXPECT_DOUBLE_EQ(begin.perturb.drop_prob, 1.0);
    EXPECT_EQ(begin.perturb.endpoints_a, std::vector<HostId>{3});
    EXPECT_EQ(begin.perturb.endpoints_b, std::vector<HostId>{7});
  }
  EXPECT_DOUBLE_EQ(script.EndTime(), 1000.0 + 3 * 200.0 + 50.0);
}

TEST(FaultScriptTest, RandomScriptsAreDeterministicBoundedAndRecoverable) {
  for (uint64_t seed = 1; seed <= 12; ++seed) {
    RandomScriptOptions opts;
    opts.protected_hosts = {0, 1};
    Rng rng_a(seed);
    Rng rng_b(seed);
    const FaultScript a = GenerateRandomFaultScript(rng_a, 50, 10000.0, opts);
    const FaultScript b = GenerateRandomFaultScript(rng_b, 50, 10000.0, opts);
    ASSERT_EQ(a.events().size(), b.events().size());
    for (size_t i = 0; i < a.events().size(); ++i) {
      EXPECT_EQ(a.events()[i].kind, b.events()[i].kind);
      EXPECT_DOUBLE_EQ(a.events()[i].at, b.events()[i].at);
      EXPECT_EQ(a.events()[i].host, b.events()[i].host);
    }
    // Every fault recovers inside 60% of the run, leaving a convergence tail, and
    // protected hosts are never the victim of anything.
    int downs = 0;
    int rejoins = 0;
    int partitions = 0;
    int heals = 0;
    for (const FaultEvent& ev : a.events()) {
      EXPECT_LE(ev.at, 10000.0 * 0.6 + 1.0) << FaultKindName(ev.kind);
      switch (ev.kind) {
        case FaultKind::kCrash:
        case FaultKind::kGracefulLeave:
          ++downs;
          EXPECT_NE(ev.host, 0u);
          EXPECT_NE(ev.host, 1u);
          break;
        case FaultKind::kRejoin:
          ++rejoins;
          break;
        case FaultKind::kPartition:
          ++partitions;
          break;
        case FaultKind::kHeal:
          ++heals;
          break;
        default:
          break;
      }
    }
    EXPECT_EQ(downs, rejoins);
    EXPECT_EQ(partitions, heals);
  }
}

// ---------- Scenario world ----------

// A full-stack world with every recovery mechanism on: keep-alive failure detection,
// suspect probing (ring re-merge), tree repair with JOIN retries, and root demotion.
struct ScenarioWorld {
  Simulator sim;
  std::unique_ptr<Network> net;
  std::unique_ptr<PastryNetwork> pastry;
  std::unique_ptr<Forest> forest;
  NodeId topic;
  std::vector<size_t> members;

  explicit ScenarioWorld(size_t n, uint64_t seed) {
    NetworkConfig net_config;
    net_config.model_bandwidth = false;
    net = std::make_unique<Network>(&sim, std::make_unique<PairwiseUniformLatency>(1.0, 10.0, seed),
                                    net_config);
    PastryConfig pastry_config;
    pastry_config.enable_keepalive = true;
    pastry_config.keepalive_interval_ms = 200.0;
    pastry_config.keepalive_timeout_ms = 700.0;
    pastry = std::make_unique<PastryNetwork>(net.get(), pastry_config);
    Rng rng(seed);
    for (size_t i = 0; i < n; ++i) {
      pastry->AddRandomNode(rng);
    }
    pastry->BuildOracle(rng);
    for (size_t i = 0; i < pastry->size(); ++i) {
      pastry->node(i).StartKeepAlive();
    }
    ScribeConfig scribe_config;
    scribe_config.enable_tree_repair = true;
    scribe_config.parent_heartbeat_ms = 100.0;
    scribe_config.parent_timeout_ms = 350.0;
    scribe_config.join_retry_ms = 400.0;
    forest = std::make_unique<Forest>(pastry.get(), scribe_config);
    topic = forest->CreateTopic("golden-" + std::to_string(seed));
    for (size_t i = 0; i < n; ++i) {
      members.push_back(i);
    }
    forest->SubscribeAll(topic, members, /*settle_ms=*/1500.0);
    forest->StartMaintenance();
  }

  HostId HostOf(size_t i) const { return pastry->node(i).host(); }

  // Publishes one round from the current root and counts per-host deliveries.
  std::unordered_map<HostId, int> BroadcastAndCollect(uint64_t round, double settle_ms) {
    auto deliveries = std::make_shared<std::unordered_map<HostId, int>>();
    for (size_t i = 0; i < forest->size(); ++i) {
      const HostId host = forest->scribe(i).host();
      forest->scribe(i).SetOnBroadcast(
          [deliveries, host](const NodeId&, uint64_t, const ScribeBroadcast&) {
            ++(*deliveries)[host];
          });
    }
    const size_t root = forest->RootOf(topic);
    EXPECT_NE(root, SIZE_MAX);
    if (root != SIZE_MAX) {
      forest->scribe(root).Broadcast(topic, round, nullptr, 64);
    }
    sim.RunFor(settle_ms);
    return *deliveries;
  }
};

// ---------- Golden scenario 1: partition then heal ----------

struct GoldenOutcome {
  double recovery_ms = -1.0;
  std::vector<InvariantViolation> violations;
  uint64_t checks_run = 0;
  uint64_t partition_drops = 0;
  bool post_heal_publish_reached_all = false;
  std::string trace_json;
  std::string metrics_json;
};

GoldenOutcome RunGoldenPartitionHeal(uint64_t seed) {
  GlobalTracer().Clear();
  GlobalTracer().SetEnabled(true);
  GlobalMetrics().ResetValues();
  GoldenOutcome out;
  {
    ScenarioWorld world(48, seed);
    FaultInjector injector(world.pastry.get(), world.forest.get(), seed + 7);
    InvariantCheckerConfig checker_config;
    checker_config.interval_ms = 500.0;
    checker_config.convergence_grace_ms = 9000.0;
    InvariantChecker checker(world.pastry.get(), world.forest.get(), checker_config);
    checker.WatchTopic(world.topic);
    checker.SetFaultInjector(&injector);
    checker.Start();

    // Cut the hosts into two halves for 3 virtual seconds. The side without the
    // rendezvous node re-roots (split brain); healing must merge the ring and demote
    // the minority root.
    std::vector<HostId> group_a;
    std::vector<HostId> group_b;
    for (size_t i = 0; i < world.pastry->size(); ++i) {
      (i < world.pastry->size() / 2 ? group_a : group_b).push_back(world.HostOf(i));
    }
    FaultScript script;
    script.PartitionAt(1000.0, group_a, group_b).HealAt(4000.0);
    injector.Schedule(script);

    world.sim.RunFor(4000.0);  // Run through the partition up to the heal.
    out.recovery_ms = MeasureRecovery(world.forest.get(), world.topic);
    world.sim.RunFor(12000.0);  // Convergence tail (ring re-merge via suspect probes).
    checker.CheckConverged();

    const auto deliveries = world.BroadcastAndCollect(2000000000ull, 2000.0);
    out.post_heal_publish_reached_all = true;
    for (size_t member : world.members) {
      const auto it = deliveries.find(world.HostOf(member));
      if (it == deliveries.end() || it->second != 1) {
        out.post_heal_publish_reached_all = false;
      }
    }
    checker.Stop();
    out.violations = checker.violations();
    out.checks_run = checker.checks_run();
    out.partition_drops = injector.stats().partition_drops;
  }
  out.trace_json = TraceToChromeJson(GlobalTracer());
  out.metrics_json = MetricsToJson(GlobalMetrics());
  GlobalTracer().SetEnabled(false);
  GlobalTracer().Clear();
  GlobalMetrics().ResetValues();
  return out;
}

TEST(FaultsimGoldenTest, PartitionThenHealRecoversWithZeroViolations) {
  const GoldenOutcome out = RunGoldenPartitionHeal(4100);
  EXPECT_GT(out.partition_drops, 0u) << "partition never cut a message";
  EXPECT_GT(out.checks_run, 10u) << "checker barely ran";
  ASSERT_GE(out.recovery_ms, 0.0) << "tree never recovered after the heal";
  EXPECT_LE(out.recovery_ms, 8000.0) << "post-heal recovery unexpectedly slow";
  EXPECT_TRUE(out.post_heal_publish_reached_all)
      << "a post-heal publish missed at least one subscriber";
  EXPECT_TRUE(out.violations.empty())
      << out.violations.size() << " violations, first: " << out.violations[0].invariant
      << " (" << out.violations[0].detail << ")";
}

TEST(FaultsimGoldenTest, PartitionHealScenarioReplaysBitIdentically) {
  const GoldenOutcome a = RunGoldenPartitionHeal(4100);
  const GoldenOutcome b = RunGoldenPartitionHeal(4100);
  EXPECT_EQ(a.recovery_ms, b.recovery_ms);
  EXPECT_EQ(a.violations.size(), b.violations.size());
  EXPECT_EQ(a.partition_drops, b.partition_drops);
  EXPECT_EQ(a.trace_json, b.trace_json) << "trace export differs between replays";
  EXPECT_EQ(a.metrics_json, b.metrics_json) << "metrics export differs between replays";
}

// ---------- Golden scenario 2: flapping parent link ----------

TEST(FaultsimGoldenTest, FlappingParentLinkRepairsAndStaysConsistent) {
  ScenarioWorld world(40, 4200);
  FaultInjector injector(world.pastry.get(), world.forest.get(), 4207);
  InvariantCheckerConfig checker_config;
  checker_config.convergence_grace_ms = 6000.0;
  InvariantChecker checker(world.pastry.get(), world.forest.get(), checker_config);
  checker.WatchTopic(world.topic);
  checker.SetFaultInjector(&injector);
  checker.Start();

  // Flap the link between a subscriber and its tree parent: bursts longer than the
  // parent timeout, so each burst looks like a dead parent and triggers repair, then
  // the link comes back before the next burst.
  const size_t root = world.forest->RootOf(world.topic);
  ASSERT_NE(root, SIZE_MAX);
  size_t child = SIZE_MAX;
  for (size_t member : world.members) {
    if (member != root &&
        world.forest->scribe(member).ParentOf(world.topic) != kInvalidHost) {
      child = member;
      break;
    }
  }
  ASSERT_NE(child, SIZE_MAX);
  const HostId child_host = world.forest->scribe(child).host();
  const HostId parent_host = world.forest->scribe(child).ParentOf(world.topic);

  FaultScript script;
  script.FlapLinkAt(500.0, child_host, parent_host, /*burst_ms=*/450.0, /*gap_ms=*/250.0,
                    /*bursts=*/6);
  injector.Schedule(script);
  // Last flap ends at 500 + 6*700 - 250 = 4450ms; give repair + grace room after it.
  world.sim.RunFor(16000.0);
  checker.CheckConverged();
  checker.Stop();

  EXPECT_GT(injector.stats().perturb_drops, 0u) << "flap windows never dropped anything";
  EXPECT_TRUE(world.forest->IsFullyConnected(world.topic));
  EXPECT_TRUE(checker.violations().empty())
      << checker.violations().size()
      << " violations, first: " << checker.violations()[0].invariant << " ("
      << checker.violations()[0].detail << ")";
  const auto deliveries = world.BroadcastAndCollect(2000000000ull, 2000.0);
  for (size_t member : world.members) {
    EXPECT_EQ(deliveries.at(world.HostOf(member)), 1) << "member " << member;
  }
}

// ---------- Golden scenario 3: rendezvous-root crash mid-round ----------

TEST(FaultsimGoldenTest, RendezvousRootCrashMidRoundFailsOverAndCompletes) {
  Simulator sim;
  Network net(&sim, std::make_unique<PairwiseUniformLatency>(1.0, 15.0, 4300), NetworkConfig{});
  PastryConfig pastry_config;
  pastry_config.enable_keepalive = true;
  pastry_config.keepalive_interval_ms = 500.0;
  pastry_config.keepalive_timeout_ms = 1600.0;
  PastryNetwork pastry(&net, pastry_config);
  Rng rng(4301);
  for (int i = 0; i < 60; ++i) {
    pastry.AddRandomNode(rng);
  }
  pastry.BuildOracle(rng);
  for (size_t i = 0; i < pastry.size(); ++i) {
    pastry.node(i).StartKeepAlive();
  }
  ScribeConfig scribe_config;
  scribe_config.enable_tree_repair = true;
  scribe_config.parent_heartbeat_ms = 100.0;
  scribe_config.parent_timeout_ms = 350.0;
  scribe_config.aggregation_timeout_ms = 600.0;
  scribe_config.join_retry_ms = 400.0;
  Forest forest(&pastry, scribe_config);
  forest.StartMaintenance();
  TotoroEngine engine(&forest, ComputeModel{}, 4302);
  TotoroEngine::FailoverConfig failover;
  failover.watchdog_interval_ms = 300.0;
  failover.stall_timeout_ms = 2500.0;
  engine.EnableFailover(failover);
  engine.SetSubscribeSettleMs(1000.0);
  // Straggler deadline: a round missing contributions closes on partial aggregate
  // instead of waiting for the watchdog every time.
  engine.SetRoundDeadline(2500.0);

  SyntheticSpec spec;
  spec.dim = 16;
  spec.num_classes = 4;
  spec.seed = 4303;
  SyntheticTask task(spec);
  Rng data_rng(4304);
  FlAppConfig config;
  config.name = "root-crash";
  config.model_factory = [](uint64_t s) { return MakeSoftmaxRegression("sr", 16, 4, s); };
  config.train.learning_rate = 0.1f;
  config.target_accuracy = 2.0;
  config.max_rounds = 8;
  std::vector<size_t> workers;
  std::vector<Dataset> shards;
  for (size_t i = 0; i < 15; ++i) {
    workers.push_back(i);
    shards.push_back(task.Generate(80, data_rng));
  }
  const NodeId topic =
      engine.LaunchApp(config, workers, std::move(shards), task.Generate(200, data_rng));

  FaultInjector injector(&pastry, &forest, 4305);
  InvariantCheckerConfig checker_config;
  checker_config.convergence_grace_ms = 6000.0;
  InvariantChecker checker(&pastry, &forest, checker_config);
  checker.WatchTopic(topic);
  checker.SetFaultInjector(&injector);
  checker.Start();

  engine.StartAll();
  sim.RunFor(1200.0);  // Let a round get underway.
  const size_t old_root = forest.RootOf(topic);
  ASSERT_NE(old_root, SIZE_MAX);
  FaultScript script;
  script.CrashAt(100.0, forest.scribe(old_root).host());
  injector.Schedule(script);

  ASSERT_TRUE(engine.RunToCompletion(/*max_virtual_ms=*/120000.0))
      << "training wedged after the root crash";
  // Let repair finish re-rooting before the convergence check.
  sim.RunFor(8000.0);
  checker.CheckConverged();
  checker.Stop();

  const size_t new_root = forest.RootOf(topic);
  ASSERT_NE(new_root, SIZE_MAX);
  EXPECT_NE(new_root, old_root);
  const auto& result = engine.result(topic);
  EXPECT_GE(result.rounds_completed, 8u);
  EXPECT_GT(result.final_accuracy, 0.4);
  EXPECT_EQ(injector.stats().crashes, 1u);
  EXPECT_TRUE(checker.violations().empty())
      << checker.violations().size()
      << " violations, first: " << checker.violations()[0].invariant << " ("
      << checker.violations()[0].detail << ")";
}

// ---------- Injector mechanics ----------

TEST(FaultInjectorTest, PartitionCutsExactlyCrossGroupTraffic) {
  ScenarioWorld world(20, 4400);
  FaultInjector injector(world.pastry.get(), world.forest.get(), 4401);
  FaultEvent cut;
  cut.kind = FaultKind::kPartition;
  for (size_t i = 0; i < 20; ++i) {
    (i < 10 ? cut.group_a : cut.group_b).push_back(world.HostOf(i));
  }
  injector.ApplyNow(cut);
  EXPECT_TRUE(injector.PartitionActive());
  EXPECT_FALSE(injector.Reachable(world.HostOf(0), world.HostOf(15)));
  EXPECT_TRUE(injector.Reachable(world.HostOf(0), world.HostOf(5)));
  EXPECT_TRUE(injector.Reachable(world.HostOf(12), world.HostOf(15)));

  FaultEvent heal;
  heal.kind = FaultKind::kHeal;
  injector.ApplyNow(heal);
  EXPECT_FALSE(injector.PartitionActive());
  EXPECT_TRUE(injector.Reachable(world.HostOf(0), world.HostOf(15)));
  EXPECT_EQ(injector.stats().partitions, 1u);
  EXPECT_EQ(injector.stats().heals, 1u);
}

TEST(FaultInjectorTest, DuplicateRuleInjectsExtraDeliveries) {
  // A duplicate_prob=1 wildcard rule on broadcast traffic: every subscriber sees the
  // same round at least twice (tree links each duplicate once).
  ScenarioWorld world(16, 4500);
  FaultInjector injector(world.pastry.get(), world.forest.get(), 4501);
  FaultScript script;
  LinkPerturbation rule;
  rule.duplicate_prob = 1.0;
  script.PerturbLinksAt(0.0, 3000.0, rule);
  injector.Schedule(script);
  world.sim.RunFor(10.0);  // Activate the rule.
  const auto deliveries = world.BroadcastAndCollect(2000000000ull, 2500.0);
  EXPECT_GT(injector.stats().duplicates, 0u);
  size_t saw_duplicate = 0;
  for (size_t member : world.members) {
    const auto it = deliveries.find(world.HostOf(member));
    if (it != deliveries.end() && it->second >= 2) {
      ++saw_duplicate;
    }
  }
  EXPECT_GT(saw_duplicate, 0u) << "no subscriber ever saw a duplicated broadcast";
}

}  // namespace
}  // namespace totoro
