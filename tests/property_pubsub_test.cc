// Property-style tests of the pub/sub forest, swept over overlay sizes, routing bases,
// subscriber counts and seeds.
//
// Invariants per (N, b, subscribers, seed):
//   - exactly one root, and it is the rendezvous node of the topic
//   - the tree is acyclic and every subscriber is reachable from the root
//   - broadcast delivers to every subscriber exactly once
//   - up-tree aggregation conserves both count and total weight for any tree shape
//   - tree depth respects the ceil(log_{2^b} N) + slack routing bound
#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <unordered_map>

#include "src/faultsim/fault_injector.h"
#include "src/faultsim/fault_script.h"
#include "src/faultsim/invariant_checker.h"
#include "src/obs/export.h"
#include "src/obs/metrics_registry.h"
#include "src/obs/trace.h"
#include "src/pubsub/forest.h"

namespace totoro {
namespace {

struct ForestParams {
  size_t n;
  int bits;
  size_t subscribers;  // 0 = everyone.
  uint64_t seed;
};

void PrintTo(const ForestParams& p, std::ostream* os) {
  *os << "N=" << p.n << " b=" << p.bits << " subs=" << p.subscribers << " seed=" << p.seed;
}

class ForestPropertyTest : public ::testing::TestWithParam<ForestParams> {
 protected:
  void SetUp() override {
    const auto p = GetParam();
    NetworkConfig net_config;
    net_config.model_bandwidth = false;
    net_ = std::make_unique<Network>(
        &sim_, std::make_unique<PairwiseUniformLatency>(1.0, 15.0, p.seed), net_config);
    PastryConfig pastry_config;
    pastry_config.bits_per_digit = p.bits;
    pastry_ = std::make_unique<PastryNetwork>(net_.get(), pastry_config);
    Rng rng(p.seed);
    for (size_t i = 0; i < p.n; ++i) {
      pastry_->AddRandomNode(rng);
    }
    pastry_->BuildOracle(rng);
    forest_ = std::make_unique<Forest>(pastry_.get(), ScribeConfig{});

    topic_ = forest_->CreateTopic("prop-" + std::to_string(p.seed));
    members_.clear();
    if (p.subscribers == 0 || p.subscribers >= p.n) {
      for (size_t i = 0; i < p.n; ++i) {
        members_.push_back(i);
      }
    } else {
      std::vector<size_t> all(p.n);
      for (size_t i = 0; i < p.n; ++i) {
        all[i] = i;
      }
      Rng pick(p.seed + 1);
      pick.Shuffle(all);
      members_.assign(all.begin(), all.begin() + static_cast<long>(p.subscribers));
    }
    forest_->SubscribeAll(topic_, members_);
  }

  Simulator sim_;
  std::unique_ptr<Network> net_;
  std::unique_ptr<PastryNetwork> pastry_;
  std::unique_ptr<Forest> forest_;
  NodeId topic_;
  std::vector<size_t> members_;
};

TEST_P(ForestPropertyTest, ExactlyOneRootAtTheRendezvous) {
  size_t roots = 0;
  for (size_t i = 0; i < forest_->size(); ++i) {
    if (forest_->scribe(i).IsRoot(topic_)) {
      ++roots;
    }
  }
  EXPECT_EQ(roots, 1u);
  const size_t root = forest_->RootOf(topic_);
  EXPECT_EQ(pastry_->node(root).id(), pastry_->ClosestLiveNode(topic_)->id());
}

TEST_P(ForestPropertyTest, TreeIsAcyclicAndCoversAllSubscribers) {
  const auto stats = forest_->ComputeStats(topic_);
  EXPECT_TRUE(stats.all_subscribers_connected);
  EXPECT_EQ(stats.num_subscribers, members_.size());
  // Acyclicity: BFS reach from the root covers every member exactly once (reachable ==
  // member count implies no node appears via two parents).
  EXPECT_EQ(stats.reachable_from_root, stats.num_members);
  // Depth respects the routing bound.
  const auto p = GetParam();
  const int bound =
      static_cast<int>(std::ceil(std::log2(static_cast<double>(p.n)) / p.bits)) + 2;
  EXPECT_LE(stats.depth, bound);
}

TEST_P(ForestPropertyTest, BroadcastDeliversToEverySubscriberExactlyOnce) {
  std::unordered_map<size_t, int> deliveries;
  for (size_t i = 0; i < forest_->size(); ++i) {
    forest_->scribe(i).SetOnBroadcast(
        [&deliveries, i](const NodeId&, uint64_t, const ScribeBroadcast&) {
          ++deliveries[i];
        });
  }
  const size_t root = forest_->RootOf(topic_);
  forest_->scribe(root).Broadcast(topic_, 1, std::make_shared<int>(1), 4096);
  sim_.Run();
  EXPECT_EQ(deliveries.size(), members_.size());
  for (size_t member : members_) {
    EXPECT_EQ(deliveries[member], 1) << "member " << member;
  }
}

TEST_P(ForestPropertyTest, AggregationConservesWeightAndCount) {
  const size_t root = forest_->RootOf(topic_);
  double total_weight = -1.0;
  uint64_t total_count = 0;
  forest_->scribe(root).SetOnRootAggregate(
      [&](const NodeId&, uint64_t, const AggregationPiece& total) {
        total_weight = total.weight;
        total_count = total.count;
      });
  Rng rng(GetParam().seed + 2);
  double expected_weight = 0.0;
  for (size_t member : members_) {
    AggregationPiece piece;
    piece.weight = rng.Uniform(0.5, 5.0);
    expected_weight += piece.weight;
    forest_->scribe(member).SubmitUpdate(topic_, 1, std::move(piece), 128);
  }
  sim_.Run();
  EXPECT_EQ(total_count, members_.size());
  EXPECT_NEAR(total_weight, expected_weight, 1e-6);
}

TEST_P(ForestPropertyTest, SecondRoundReusesTheSameTree) {
  // Round state is per-round: a second aggregation on the same tree works and the tree
  // structure (parents/children) is unchanged.
  const size_t root = forest_->RootOf(topic_);
  std::vector<HostId> parents_before;
  for (size_t member : members_) {
    parents_before.push_back(forest_->scribe(member).ParentOf(topic_));
  }
  int root_totals = 0;
  forest_->scribe(root).SetOnRootAggregate(
      [&](const NodeId&, uint64_t, const AggregationPiece&) { ++root_totals; });
  for (uint64_t round = 1; round <= 2; ++round) {
    for (size_t member : members_) {
      AggregationPiece piece;
      forest_->scribe(member).SubmitUpdate(topic_, round, std::move(piece), 64);
    }
    sim_.Run();
  }
  EXPECT_EQ(root_totals, 2);
  for (size_t i = 0; i < members_.size(); ++i) {
    EXPECT_EQ(forest_->scribe(members_[i]).ParentOf(topic_), parents_before[i]);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ForestPropertyTest,
    ::testing::Values(ForestParams{40, 4, 0, 1}, ForestParams{120, 4, 0, 2},
                      ForestParams{120, 3, 40, 3}, ForestParams{250, 5, 0, 4},
                      ForestParams{250, 2, 60, 5}, ForestParams{500, 4, 100, 6},
                      ForestParams{500, 3, 0, 7}, ForestParams{60, 4, 5, 8}));

// ---------- Repair sweep ----------

class RepairSweepTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RepairSweepTest, TreesReconnectAfterRandomInternalFailures) {
  Simulator sim;
  NetworkConfig net_config;
  net_config.model_bandwidth = false;
  Network net(&sim, std::make_unique<PairwiseUniformLatency>(1.0, 10.0, GetParam()),
              net_config);
  PastryNetwork pastry(&net, PastryConfig{});
  Rng rng(GetParam());
  for (int i = 0; i < 150; ++i) {
    pastry.AddRandomNode(rng);
  }
  pastry.BuildOracle(rng);
  ScribeConfig scribe_config;
  scribe_config.enable_tree_repair = true;
  scribe_config.parent_heartbeat_ms = 50.0;
  scribe_config.parent_timeout_ms = 170.0;
  Forest forest(&pastry, scribe_config);
  const NodeId topic = forest.CreateTopic("repair-" + std::to_string(GetParam()));
  std::vector<size_t> all(forest.size());
  for (size_t i = 0; i < all.size(); ++i) {
    all[i] = i;
  }
  forest.SubscribeAll(topic, all);
  forest.StartMaintenance();
  sim.RunFor(300.0);
  ASSERT_TRUE(forest.IsFullyConnected(topic));

  // Kill random internal nodes (nodes with children), sparing the root.
  const size_t root = forest.RootOf(topic);
  size_t killed = 0;
  for (size_t i = 0; i < forest.size() && killed < 8; ++i) {
    if (i != root && !forest.scribe(i).ChildrenOf(topic).empty() && rng.Bernoulli(0.5)) {
      net.SetHostUp(forest.scribe(i).host(), false);
      ++killed;
    }
  }
  ASSERT_GT(killed, 0u);
  sim.RunFor(6000.0);
  EXPECT_TRUE(forest.IsFullyConnected(topic));
}

INSTANTIATE_TEST_SUITE_P(Seeds, RepairSweepTest, ::testing::Range<uint64_t>(80, 88));

// ---------- Randomized fault-script sweep ----------

struct FaultTrialOutcome {
  size_t violations = 0;
  bool connected = false;
  uint64_t faults_applied = 0;
  std::string trace_json;
  std::string metrics_json;
};

// Builds a full-recovery world (keep-alives, suspect probes, tree repair, JOIN
// retries), runs a random-but-seeded fault script against it, and checks every
// invariant after the convergence tail. Observability exports come back so callers can
// compare replays byte-for-byte.
FaultTrialOutcome RunRandomFaultTrial(uint64_t seed) {
  GlobalTracer().Clear();
  GlobalTracer().SetEnabled(true);
  GlobalMetrics().ResetValues();
  FaultTrialOutcome out;
  {
    Simulator sim;
    NetworkConfig net_config;
    net_config.model_bandwidth = false;
    Network net(&sim, std::make_unique<PairwiseUniformLatency>(1.0, 10.0, seed), net_config);
    PastryConfig pastry_config;
    pastry_config.enable_keepalive = true;
    pastry_config.keepalive_interval_ms = 200.0;
    pastry_config.keepalive_timeout_ms = 700.0;
    PastryNetwork pastry(&net, pastry_config);
    Rng rng(seed);
    const size_t n = 50;
    for (size_t i = 0; i < n; ++i) {
      pastry.AddRandomNode(rng);
    }
    pastry.BuildOracle(rng);
    for (size_t i = 0; i < pastry.size(); ++i) {
      pastry.node(i).StartKeepAlive();
    }
    ScribeConfig scribe_config;
    scribe_config.enable_tree_repair = true;
    scribe_config.parent_heartbeat_ms = 100.0;
    scribe_config.parent_timeout_ms = 350.0;
    scribe_config.join_retry_ms = 400.0;
    Forest forest(&pastry, scribe_config);
    const NodeId topic = forest.CreateTopic("fault-sweep-" + std::to_string(seed));
    std::vector<size_t> members(n);
    for (size_t i = 0; i < n; ++i) {
      members[i] = i;
    }
    forest.SubscribeAll(topic, members, /*settle_ms=*/1500.0);
    forest.StartMaintenance();

    FaultInjector injector(&pastry, &forest, seed + 1);
    InvariantCheckerConfig checker_config;
    checker_config.convergence_grace_ms = 9000.0;
    InvariantChecker checker(&pastry, &forest, checker_config);
    checker.WatchTopic(topic);
    checker.SetFaultInjector(&injector);
    checker.Start();

    Rng script_rng(seed + 2);
    const double duration = 20000.0;
    const FaultScript script = GenerateRandomFaultScript(script_rng, n, duration);
    injector.Schedule(script);
    // The script confines faults to the first 60%; run it plus a convergence tail long
    // enough for ring re-merge and tree re-rooting.
    sim.RunFor(duration + 10000.0);
    checker.CheckConverged();
    checker.Stop();

    out.violations = checker.violations().size();
    if (!checker.violations().empty()) {
      ADD_FAILURE() << "first violation: " << checker.violations()[0].invariant << " ("
                    << checker.violations()[0].detail << ") at t="
                    << checker.violations()[0].at;
    }
    out.connected = forest.IsFullyConnected(topic);
    out.faults_applied = injector.stats().crashes + injector.stats().graceful_leaves +
                         injector.stats().partitions + injector.stats().rejoins;
  }
  out.trace_json = TraceToChromeJson(GlobalTracer());
  out.metrics_json = MetricsToJson(GlobalMetrics());
  GlobalTracer().SetEnabled(false);
  GlobalTracer().Clear();
  GlobalMetrics().ResetValues();
  return out;
}

class FaultScriptSweepTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FaultScriptSweepTest, InvariantsHoldAndReplayIsBitIdentical) {
  const FaultTrialOutcome a = RunRandomFaultTrial(GetParam());
  EXPECT_EQ(a.violations, 0u);
  EXPECT_TRUE(a.connected);
  const FaultTrialOutcome b = RunRandomFaultTrial(GetParam());
  EXPECT_EQ(a.violations, b.violations);
  EXPECT_EQ(a.faults_applied, b.faults_applied);
  EXPECT_EQ(a.trace_json, b.trace_json) << "trace export differs between replays";
  EXPECT_EQ(a.metrics_json, b.metrics_json) << "metrics export differs between replays";
}

INSTANTIATE_TEST_SUITE_P(Seeds, FaultScriptSweepTest, ::testing::Range<uint64_t>(140, 143));

}  // namespace
}  // namespace totoro
