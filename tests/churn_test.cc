// Continuous-churn tests: the ChurnDriver leaves/joins nodes through the live protocol
// while routing, trees, and whole FL applications keep working.
#include <gtest/gtest.h>

#include "src/core/engine.h"
#include "src/dht/churn.h"
#include "src/pubsub/forest.h"

namespace totoro {
namespace {

struct ChurnWorld {
  Simulator sim;
  std::unique_ptr<Network> net;
  std::unique_ptr<PastryNetwork> pastry;

  explicit ChurnWorld(size_t n, uint64_t seed, bool keepalive = true) {
    NetworkConfig net_config;
    net_config.model_bandwidth = false;
    net = std::make_unique<Network>(&sim, std::make_unique<PairwiseUniformLatency>(1.0, 10.0, seed),
                                    net_config);
    PastryConfig config;
    config.enable_keepalive = keepalive;
    config.keepalive_interval_ms = 200.0;
    config.keepalive_timeout_ms = 700.0;
    pastry = std::make_unique<PastryNetwork>(net.get(), config);
    Rng rng(seed);
    for (size_t i = 0; i < n; ++i) {
      pastry->AddRandomNode(rng);
    }
    pastry->BuildOracle(rng);
    if (keepalive) {
      for (size_t i = 0; i < pastry->size(); ++i) {
        pastry->node(i).StartKeepAlive();
      }
    }
  }
};

TEST(ChurnDriverTest, GeneratesBothLeavesAndJoins) {
  ChurnWorld world(60, 1000);
  ChurnDriver churn(world.pastry.get(), ChurnConfig{}, 1001);
  churn.Start();
  world.sim.RunFor(10000.0);
  churn.Stop();
  EXPECT_GT(churn.leaves(), 5u);
  EXPECT_GT(churn.joins(), 5u);
  EXPECT_GE(churn.LiveNodes(), ChurnConfig{}.min_live_nodes);
}

TEST(ChurnDriverTest, StopCancelsThePendingTick) {
  // Stop() must cancel the already-scheduled tick, not just flip the running flag:
  // destroying the driver right after Stop() used to leave a queued Tick() holding a
  // dangling `this`, a use-after-free once the queue drained (caught under ASan).
  ChurnWorld world(20, 1040, /*keepalive=*/false);
  auto churn = std::make_unique<ChurnDriver>(world.pastry.get(), ChurnConfig{}, 1041);
  churn->Start();
  world.sim.RunFor(1000.0);
  const size_t events_before = churn->leaves() + churn->joins();
  churn->Stop();
  churn.reset();  // Tear down while the next tick is still in the queue.
  world.sim.RunFor(5000.0);
  // Re-create a driver to show the world is still usable, and confirm the stopped
  // driver generated no further events (its tick never fired after Stop()).
  ChurnDriver again(world.pastry.get(), ChurnConfig{}, 1042);
  again.Start();
  world.sim.RunFor(1000.0);
  again.Stop();
  EXPECT_GT(events_before, 0u);
  EXPECT_GT(again.leaves() + again.joins(), 0u);
}

TEST(ChurnDriverTest, JoinedNodesBecomeRoutableDestinations) {
  ChurnWorld world(50, 1010);
  ChurnConfig config;
  config.leave_fraction = 0.0;  // Joins only.
  ChurnDriver churn(world.pastry.get(), config, 1011);
  churn.Start();
  world.sim.RunFor(5000.0);
  churn.Stop();
  world.sim.RunFor(2000.0);  // Let announcements settle.
  ASSERT_GT(churn.joins(), 5u);
  // Route directly to each joined node's own id: the join protocol must have made them
  // reachable rendezvous targets.
  int delivered = 0;
  NodeId delivered_at;
  for (size_t i = 0; i < world.pastry->size(); ++i) {
    world.pastry->node(i).SetDeliverHandler(500, [&, i](const NodeId&, const Message&, int) {
      ++delivered;
      delivered_at = world.pastry->node(i).id();
    });
  }
  int checked = 0;
  for (size_t i = 50; i < world.pastry->size(); ++i) {  // The joiners.
    PastryNode& joiner = world.pastry->node(i);
    Message m;
    m.type = 500;
    world.pastry->node(0).Route(joiner.id(), std::move(m));
    // Periodic keep-alives never drain the queue; a bounded settle suffices.
    world.sim.RunFor(300.0);
    ++checked;
    EXPECT_EQ(delivered, checked);
    EXPECT_EQ(delivered_at, joiner.id()) << "joiner " << i << " not the rendezvous of its id";
  }
}

TEST(ChurnDriverTest, RoutingStaysCorrectUnderContinuousChurn) {
  ChurnWorld world(80, 1020);
  ChurnConfig config;
  config.event_interval_ms = 300.0;
  ChurnDriver churn(world.pastry.get(), config, 1021);
  churn.Start();
  Rng rng(1022);
  int delivered = 0;
  for (size_t i = 0; i < world.pastry->size(); ++i) {
    world.pastry->node(i).SetDeliverHandler(
        500, [&](const NodeId&, const Message&, int) { ++delivered; });
  }
  int sent = 0;
  for (int epoch = 0; epoch < 20; ++epoch) {
    world.sim.RunFor(500.0);
    // Wire deliver handlers onto any nodes that joined since the last epoch.
    for (size_t i = 0; i < world.pastry->size(); ++i) {
      world.pastry->node(i).SetDeliverHandler(
          500, [&](const NodeId&, const Message&, int) { ++delivered; });
    }
    for (int t = 0; t < 5; ++t) {
      PastryNode& origin = world.pastry->node(rng.NextBelow(world.pastry->size()));
      if (!origin.alive()) {
        continue;
      }
      Message m;
      m.type = 500;
      origin.Route(RandomNodeId(rng), std::move(m));
      ++sent;
    }
  }
  churn.Stop();
  world.sim.RunFor(3000.0);
  EXPECT_GT(sent, 50);
  // Liveness-aware routing dodges known-dead hops, but a hop can die while a message is
  // in flight (there are no transport retries at this layer), so a small loss tail is
  // expected under continuous churn; the overwhelming majority must still land.
  EXPECT_GE(delivered, sent * 8 / 10);
}

TEST(ChurnDriverTest, FlTrainingSurvivesContinuousChurn) {
  Simulator sim;
  Network net(&sim, std::make_unique<PairwiseUniformLatency>(1.0, 15.0, 1030), NetworkConfig{});
  PastryConfig pastry_config;
  pastry_config.enable_keepalive = true;
  pastry_config.keepalive_interval_ms = 500.0;
  pastry_config.keepalive_timeout_ms = 1600.0;
  PastryNetwork pastry(&net, pastry_config);
  Rng rng(1031);
  for (int i = 0; i < 60; ++i) {
    pastry.AddRandomNode(rng);
  }
  pastry.BuildOracle(rng);
  for (size_t i = 0; i < pastry.size(); ++i) {
    pastry.node(i).StartKeepAlive();
  }
  ScribeConfig scribe_config;
  scribe_config.enable_tree_repair = true;
  scribe_config.parent_heartbeat_ms = 100.0;
  scribe_config.parent_timeout_ms = 350.0;
  scribe_config.aggregation_timeout_ms = 600.0;
  Forest forest(&pastry, scribe_config);
  forest.StartMaintenance();
  TotoroEngine engine(&forest, ComputeModel{}, 1032);
  TotoroEngine::FailoverConfig failover;
  failover.watchdog_interval_ms = 300.0;
  failover.stall_timeout_ms = 2500.0;
  engine.EnableFailover(failover);
  // Keep-alive timers never drain the queue; bound the tree-build settle.
  engine.SetSubscribeSettleMs(1000.0);

  SyntheticSpec spec;
  spec.dim = 16;
  spec.num_classes = 4;
  spec.seed = 1033;
  SyntheticTask task(spec);
  Rng data_rng(1034);
  FlAppConfig config;
  config.name = "churn-survivor";
  config.model_factory = [](uint64_t s) { return MakeSoftmaxRegression("sr", 16, 4, s); };
  config.train.learning_rate = 0.1f;
  config.target_accuracy = 2.0;
  config.max_rounds = 8;
  std::vector<size_t> workers;
  std::vector<Dataset> shards;
  for (size_t i = 0; i < 15; ++i) {
    workers.push_back(i);
    shards.push_back(task.Generate(80, data_rng));
  }
  const NodeId topic =
      engine.LaunchApp(config, workers, std::move(shards), task.Generate(200, data_rng));

  ChurnConfig churn_config;
  churn_config.event_interval_ms = 150.0;
  churn_config.min_live_nodes = 30;
  ChurnDriver churn(&pastry, churn_config, 1035);
  churn.Start();
  engine.StartAll();
  const bool done = engine.RunToCompletion(/*max_virtual_ms=*/60000.0);
  churn.Stop();
  ASSERT_TRUE(done) << "training wedged under continuous churn";
  const auto& result = engine.result(topic);
  EXPECT_EQ(result.rounds_completed, 8u);
  EXPECT_GT(result.final_accuracy, 0.4);
  EXPECT_GT(churn.leaves() + churn.joins(), 8u);
}

}  // namespace
}  // namespace totoro
