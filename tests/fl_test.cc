#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "src/fl/aggregation.h"
#include "src/fl/client.h"
#include "src/fl/selection.h"
#include "src/ml/serialize.h"

namespace totoro {
namespace {

TEST(FederatedAverageTest, WeightedMean) {
  std::vector<WeightedUpdate> updates;
  updates.push_back({{1.0f, 2.0f}, 1.0});
  updates.push_back({{3.0f, 4.0f}, 3.0});
  const auto avg = FederatedAverage(updates);
  ASSERT_EQ(avg.size(), 2u);
  EXPECT_FLOAT_EQ(avg[0], (1.0f + 9.0f) / 4.0f);
  EXPECT_FLOAT_EQ(avg[1], (2.0f + 12.0f) / 4.0f);
}

TEST(FederatedAverageTest, SingleUpdateIdentity) {
  std::vector<WeightedUpdate> updates;
  updates.push_back({{5.0f, -1.0f}, 7.0});
  EXPECT_EQ(FederatedAverage(updates), (std::vector<float>{5.0f, -1.0f}));
}

AggregationPiece MakePiece(std::vector<float> w, double weight) {
  auto payload = std::make_shared<WeightsPayload>();
  payload->weights = std::move(w);
  AggregationPiece p;
  p.data = std::move(payload);
  p.weight = weight;
  p.count = 1;
  return p;
}

const std::vector<float>& PieceWeights(const AggregationPiece& p) {
  return static_cast<const WeightsPayload*>(p.data.get())->weights;
}

TEST(FedAvgCombinerTest, MatchesFlatAverage) {
  auto combine = MakeFedAvgCombiner();
  std::vector<AggregationPiece> pieces;
  pieces.push_back(MakePiece({1.0f, 0.0f}, 2.0));
  pieces.push_back(MakePiece({0.0f, 1.0f}, 2.0));
  const auto total = combine(pieces);
  EXPECT_DOUBLE_EQ(total.weight, 4.0);
  EXPECT_EQ(total.count, 2u);
  EXPECT_FLOAT_EQ(PieceWeights(total)[0], 0.5f);
  EXPECT_FLOAT_EQ(PieceWeights(total)[1], 0.5f);
}

TEST(FedAvgCombinerTest, HierarchicalEqualsFlat) {
  // The associativity property Totoro's trees rely on: combining partial combines gives
  // the same result as a single flat combine.
  auto combine = MakeFedAvgCombiner();
  std::vector<AggregationPiece> all;
  all.push_back(MakePiece({1.0f}, 1.0));
  all.push_back(MakePiece({2.0f}, 2.0));
  all.push_back(MakePiece({3.0f}, 3.0));
  all.push_back(MakePiece({4.0f}, 4.0));
  const auto flat = combine(all);

  std::vector<AggregationPiece> left = {all[0], all[1]};
  std::vector<AggregationPiece> right = {all[2], all[3]};
  std::vector<AggregationPiece> partials = {combine(left), combine(right)};
  const auto tree = combine(partials);

  EXPECT_DOUBLE_EQ(tree.weight, flat.weight);
  EXPECT_EQ(tree.count, flat.count);
  EXPECT_NEAR(PieceWeights(tree)[0], PieceWeights(flat)[0], 1e-5f);
}

TEST(CompressionTest, NoneKeepsEverything) {
  std::vector<float> w = {1.0f, 2.0f};
  std::vector<float> ref = {0.0f, 0.0f};
  CompressionConfig config;
  const auto out = CompressUpdate(w, ref, config);
  EXPECT_EQ(out.Reconstruct(ref), w);
  EXPECT_EQ(out.wire_bytes, 8u);
}

TEST(CompressionTest, TopKKeepsLargestDeltas) {
  std::vector<float> ref(10, 0.0f);
  std::vector<float> w = ref;
  w[3] = 10.0f;  // Big delta.
  w[7] = 0.1f;   // Small delta.
  CompressionConfig config;
  config.kind = CompressionKind::kTopK;
  config.topk_fraction = 0.1;  // Keep 1 of 10.
  const auto out = CompressUpdate(w, ref, config);
  const auto reconstructed = out.Reconstruct(ref);
  EXPECT_FLOAT_EQ(reconstructed[3], 10.0f);
  EXPECT_FLOAT_EQ(reconstructed[7], 0.0f);  // Dropped.
  EXPECT_EQ(out.wire_bytes, 8u);                 // 1 (index,value) pair.
  EXPECT_LT(out.wire_bytes, 10 * 4u);
}

TEST(CompressionTest, Int8ShrinksWire) {
  std::vector<float> w(100, 0.5f);
  std::vector<float> ref(100, 0.0f);
  CompressionConfig config;
  config.kind = CompressionKind::kInt8;
  const auto out = CompressUpdate(w, ref, config);
  EXPECT_LT(out.wire_bytes, 100 * 4u);
  for (float v : out.Reconstruct(ref)) {
    EXPECT_NEAR(v, 0.5f, 0.01f);
  }
}

TEST(CompressionTest, TopKReconstructionIdentityAndWireAccounting) {
  // Reconstruction identity: every untouched coordinate equals the reference exactly,
  // every kept coordinate equals the input exactly, at most k coordinates move, and
  // the kept set dominates the dropped set by |delta|.
  Rng rng(77);
  const size_t n = 64;
  std::vector<float> ref(n);
  std::vector<float> w(n);
  for (size_t i = 0; i < n; ++i) {
    ref[i] = static_cast<float>(rng.Gaussian());
    w[i] = ref[i] + static_cast<float>(rng.Gaussian(0.0, 0.5));
  }
  CompressionConfig config;
  config.kind = CompressionKind::kTopK;
  config.topk_fraction = 0.25;
  const size_t k = 16;  // ceil(0.25 * 64).
  const auto out = CompressUpdate(w, ref, config);
  const auto dense = out.Reconstruct(ref);
  ASSERT_EQ(dense.size(), n);
  EXPECT_EQ(out.topk_indices.size(), k);
  EXPECT_EQ(out.wire_bytes, k * (sizeof(uint32_t) + sizeof(float)));

  size_t kept = 0;
  float min_kept_delta = 1e30f;
  float max_dropped_delta = 0.0f;
  for (size_t i = 0; i < n; ++i) {
    if (dense[i] == ref[i] && w[i] != ref[i]) {
      max_dropped_delta = std::max(max_dropped_delta, std::abs(w[i] - ref[i]));
      continue;  // Dropped coordinate: exactly the reference.
    }
    EXPECT_EQ(dense[i], w[i]) << "kept coordinate must be exact at " << i;
    if (w[i] != ref[i]) {
      ++kept;
      min_kept_delta = std::min(min_kept_delta, std::abs(w[i] - ref[i]));
    }
  }
  EXPECT_LE(kept, k);
  EXPECT_GE(min_kept_delta, max_dropped_delta);
}

TEST(CompressionTest, Int8AndNoneParity) {
  // kNone is the identity with exact wire accounting; kInt8 matches the serializer's
  // encode/decode round trip bit-for-bit and its wire format (scale + 1 byte/coord).
  Rng rng(78);
  const size_t n = 200;
  std::vector<float> ref(n, 0.0f);
  std::vector<float> w(n);
  for (auto& v : w) {
    v = static_cast<float>(rng.Gaussian(0.0, 2.0));
  }
  CompressionConfig none;
  const auto plain = CompressUpdate(w, ref, none);
  EXPECT_EQ(plain.Reconstruct(ref), w);
  EXPECT_EQ(plain.wire_bytes, n * sizeof(float));

  CompressionConfig int8;
  int8.kind = CompressionKind::kInt8;
  const auto quantized = CompressUpdate(w, ref, int8);
  EXPECT_EQ(quantized.wire_bytes, n + sizeof(float));
  // The stored payload IS the wire blob, and its lazy reconstruction matches the
  // serializer's encode/decode round trip bit-for-bit.
  EXPECT_EQ(quantized.payload, EncodeInt8(w));
  const auto dense = quantized.Reconstruct({});
  EXPECT_EQ(dense, DecodeInt8(EncodeInt8(w)));
  float max_abs = 0.0f;
  for (float v : w) {
    max_abs = std::max(max_abs, std::abs(v));
  }
  for (size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(dense[i], w[i], max_abs / 127.0f * 0.51f);
  }
}

TEST(PrivacyTest, ClipBoundsDeltaNorm) {
  Rng rng(1);
  std::vector<float> ref(50, 0.0f);
  std::vector<float> w(50, 10.0f);  // Huge delta, norm ~70.
  DpConfig config;
  config.clip_norm = 1.0;
  config.noise_multiplier = 0.0;  // Pure clipping.
  const auto out = ApplyDp(w, ref, config, rng);
  double norm = 0;
  for (size_t i = 0; i < out.size(); ++i) {
    norm += static_cast<double>(out[i] - ref[i]) * (out[i] - ref[i]);
  }
  EXPECT_NEAR(std::sqrt(norm), 1.0, 1e-5);
}

TEST(PrivacyTest, SmallDeltaUnclipped) {
  Rng rng(2);
  std::vector<float> ref(10, 0.0f);
  std::vector<float> w(10, 0.01f);
  DpConfig config;
  config.clip_norm = 10.0;
  config.noise_multiplier = 0.0;
  const auto out = ApplyDp(w, ref, config, rng);
  for (size_t i = 0; i < out.size(); ++i) {
    EXPECT_NEAR(out[i], w[i], 1e-6f);
  }
}

TEST(PrivacyTest, NoiseMagnitudeMatchesMultiplier) {
  Rng rng(3);
  const size_t n = 10000;
  std::vector<float> ref(n, 0.0f);
  std::vector<float> w(n, 0.0f);
  DpConfig config;
  config.clip_norm = 1.0;
  config.noise_multiplier = 2.0;
  const auto out = ApplyDp(w, ref, config, rng);
  double var = 0;
  for (float v : out) {
    var += static_cast<double>(v) * v;
  }
  var /= n;
  const double expected_var = 4.0 / static_cast<double>(n);
  EXPECT_NEAR(var, expected_var, expected_var * 0.1);
}

TEST(LocalTrainerTest, TrainsAndReportsCost) {
  SyntheticTask task(SyntheticTask::TextClassificationLike(7));
  Rng rng(8);
  Dataset shard = task.Generate(100, rng);
  auto trainer = LocalTrainer(MakeSoftmaxRegression("m", 32, 4, 9), std::move(shard), 2.0, 10);
  auto global = MakeSoftmaxRegression("g", 32, 4, 11)->GetWeights();
  TrainConfig config;
  config.local_steps = 5;
  config.batch_size = 20;
  ComputeModel compute;
  const auto update = trainer.Train(global, config, compute);
  EXPECT_EQ(update.weights.size(), global.size());
  EXPECT_DOUBLE_EQ(update.sample_weight, 100.0);
  // speed 2.0 halves the time relative to speed 1.0.
  const double expected =
      compute.TrainTimeMs(update.weights.size(), 100, 2.0);
  EXPECT_DOUBLE_EQ(update.compute_time_ms, expected);
  EXPECT_EQ(update.wire_bytes, update.weights.size() * 4);
  EXPECT_GT(update.train_loss, 0.0f);
}

TEST(LocalTrainerTest, CompressionShrinksWireBytes) {
  SyntheticTask task(SyntheticTask::TextClassificationLike(17));
  Rng rng(18);
  Dataset shard = task.Generate(60, rng);
  LocalTrainer trainer(MakeSoftmaxRegression("m", 32, 4, 19), std::move(shard), 1.0, 20);
  auto global = MakeSoftmaxRegression("g", 32, 4, 21)->GetWeights();
  TrainConfig config;
  config.local_steps = 3;
  CompressionConfig compression;
  compression.kind = CompressionKind::kTopK;
  compression.topk_fraction = 0.05;
  const auto update =
      trainer.Train(global, config, ComputeModel{}, std::nullopt, compression);
  EXPECT_LT(update.wire_bytes, global.size() * 4 / 2);
}

TEST(SelectorTest, RandomSelectsDistinct) {
  std::vector<ClientInfo> clients;
  for (size_t i = 0; i < 20; ++i) {
    clients.push_back({i, 1.0, 1.0});
  }
  RandomSelector selector;
  Rng rng(30);
  const auto chosen = selector.Select(clients, 8, rng);
  EXPECT_EQ(chosen.size(), 8u);
  std::set<size_t> unique(chosen.begin(), chosen.end());
  EXPECT_EQ(unique.size(), 8u);
}

TEST(SelectorTest, OortPrefersHighLossFastClients) {
  std::vector<ClientInfo> clients;
  for (size_t i = 0; i < 10; ++i) {
    clients.push_back({i, i == 3 ? 10.0 : 0.1, i == 3 ? 4.0 : 1.0});
  }
  OortLikeSelector selector(/*exploration_fraction=*/0.0);
  Rng rng(31);
  const auto chosen = selector.Select(clients, 1, rng);
  ASSERT_EQ(chosen.size(), 1u);
  EXPECT_EQ(chosen[0], 3u);
}

TEST(SelectorTest, OortExploresWithBudget) {
  std::vector<ClientInfo> clients;
  for (size_t i = 0; i < 100; ++i) {
    clients.push_back({i, i < 10 ? 10.0 : 0.1, 1.0});
  }
  OortLikeSelector selector(/*exploration_fraction=*/0.5);
  Rng rng(32);
  const auto chosen = selector.Select(clients, 20, rng);
  EXPECT_EQ(chosen.size(), 20u);
  // At least some picks outside the top-10 utility set.
  size_t outside = 0;
  for (size_t c : chosen) {
    if (c >= 10) {
      ++outside;
    }
  }
  EXPECT_GT(outside, 0u);
}

TEST(SelectorTest, OortAlwaysFillsCountWithDistinctClients) {
  // Sweep pool sizes, counts and exploration fractions: Select must return exactly
  // `count` distinct clients regardless of how the explore/exploit split rounds.
  for (size_t pool : {1u, 2u, 5u, 7u, 20u, 33u}) {
    std::vector<ClientInfo> clients;
    for (size_t i = 0; i < pool; ++i) {
      clients.push_back({i, 0.1 * static_cast<double>(i % 4), 1.0 + 0.5 * (i % 3)});
    }
    for (double frac : {0.0, 0.1, 0.33, 0.5, 0.9, 1.0}) {
      OortLikeSelector selector(frac);
      for (size_t count = 1; count <= pool; ++count) {
        Rng rng(1000 + pool * 31 + count);
        const auto chosen = selector.Select(clients, count, rng);
        ASSERT_EQ(chosen.size(), count)
            << "pool=" << pool << " frac=" << frac << " count=" << count;
        std::set<size_t> unique(chosen.begin(), chosen.end());
        EXPECT_EQ(unique.size(), count);
        for (size_t c : chosen) {
          EXPECT_LT(c, pool);
        }
      }
    }
  }
}

}  // namespace
}  // namespace totoro
