#include "tools/lint/lexer.h"

#include <cctype>
#include <cstddef>

namespace totoro::lint {

namespace {

bool IsIdentStart(char c) { return std::isalpha(static_cast<unsigned char>(c)) || c == '_'; }
bool IsIdentChar(char c) { return std::isalnum(static_cast<unsigned char>(c)) || c == '_'; }

std::string Trim(const std::string& s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) {
    ++b;
  }
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) {
    --e;
  }
  return s.substr(b, e - b);
}

// Records a `// LINT: tag` annotation found in a comment body.
void MaybeRecordAnnotation(const std::string& body, int line, LexedFile* out) {
  const std::string marker = "LINT:";
  const size_t pos = body.find(marker);
  if (pos == std::string::npos) {
    return;
  }
  out->annotations[line] = Trim(body.substr(pos + marker.size()));
}

}  // namespace

LexedFile Lex(const std::string& source) {
  LexedFile out;
  const size_t n = source.size();
  size_t i = 0;
  int line = 1;
  bool at_line_start = true;  // Only whitespace seen since the last newline.

  auto advance = [&](size_t count) {
    for (size_t k = 0; k < count && i < n; ++k, ++i) {
      if (source[i] == '\n') {
        ++line;
        at_line_start = true;
      }
    }
  };

  while (i < n) {
    const char c = source[i];
    if (c == '\n' || std::isspace(static_cast<unsigned char>(c))) {
      advance(1);
      continue;
    }

    // Preprocessor directive: capture quoted include targets, then fall through so the
    // rest of the line lexes as ordinary tokens (object-like macros can hide getenv()).
    if (c == '#' && at_line_start) {
      size_t j = i + 1;
      while (j < n && (source[j] == ' ' || source[j] == '\t')) {
        ++j;
      }
      if (source.compare(j, 7, "include") == 0) {
        j += 7;
        while (j < n && (source[j] == ' ' || source[j] == '\t')) {
          ++j;
        }
        if (j < n && source[j] == '"') {
          const size_t close = source.find('"', j + 1);
          if (close != std::string::npos) {
            out.quoted_includes.push_back(source.substr(j + 1, close - j - 1));
          }
        }
        // Skip the whole directive; include targets never feed other rules.
        const size_t eol = source.find('\n', i);
        advance((eol == std::string::npos ? n : eol) - i);
        continue;
      }
    }
    at_line_start = false;

    // Comments.
    if (c == '/' && i + 1 < n && source[i + 1] == '/') {
      const size_t eol = source.find('\n', i);
      const size_t end = eol == std::string::npos ? n : eol;
      MaybeRecordAnnotation(source.substr(i + 2, end - i - 2), line, &out);
      advance(end - i);
      continue;
    }
    if (c == '/' && i + 1 < n && source[i + 1] == '*') {
      const size_t close = source.find("*/", i + 2);
      const size_t end = close == std::string::npos ? n : close + 2;
      MaybeRecordAnnotation(source.substr(i + 2, end - i - 2), line, &out);
      advance(end - i);
      continue;
    }

    // Raw string literal: R"delim( ... )delim".
    if (c == 'R' && i + 1 < n && source[i + 1] == '"') {
      size_t j = i + 2;
      std::string delim;
      while (j < n && source[j] != '(') {
        delim += source[j++];
      }
      const std::string closer = ")" + delim + "\"";
      const size_t close = source.find(closer, j);
      const size_t body_end = close == std::string::npos ? n : close;
      out.tokens.push_back(
          {TokenKind::kString, source.substr(j + 1, body_end - j - 1), line});
      advance((close == std::string::npos ? n : close + closer.size()) - i);
      continue;
    }

    // String and char literals.
    if (c == '"' || c == '\'') {
      const int start_line = line;
      std::string text;
      size_t j = i + 1;
      while (j < n && source[j] != c) {
        if (source[j] == '\\' && j + 1 < n) {
          text += source[j];
          text += source[j + 1];
          j += 2;
        } else {
          text += source[j++];
        }
      }
      out.tokens.push_back(
          {c == '"' ? TokenKind::kString : TokenKind::kChar, text, start_line});
      advance((j < n ? j + 1 : n) - i);
      continue;
    }

    // Identifiers.
    if (IsIdentStart(c)) {
      size_t j = i;
      while (j < n && IsIdentChar(source[j])) {
        ++j;
      }
      out.tokens.push_back({TokenKind::kIdentifier, source.substr(i, j - i), line});
      advance(j - i);
      continue;
    }

    // Numbers (enough to keep 1.5e3 and 0xff single tokens; exactness is irrelevant).
    if (std::isdigit(static_cast<unsigned char>(c))) {
      size_t j = i;
      while (j < n && (IsIdentChar(source[j]) || source[j] == '.' ||
                       ((source[j] == '+' || source[j] == '-') && j > i &&
                        (source[j - 1] == 'e' || source[j - 1] == 'E')))) {
        ++j;
      }
      out.tokens.push_back({TokenKind::kNumber, source.substr(i, j - i), line});
      advance(j - i);
      continue;
    }

    // Multi-char punctuation the rules care about; everything else is one char.
    static const char* kPairs[] = {"::", "->", "<=", ">=", "==", "!="};
    bool matched = false;
    for (const char* p : kPairs) {
      if (source.compare(i, 2, p) == 0) {
        out.tokens.push_back({TokenKind::kPunct, p, line});
        advance(2);
        matched = true;
        break;
      }
    }
    if (matched) {
      continue;
    }
    out.tokens.push_back({TokenKind::kPunct, std::string(1, c), line});
    advance(1);
  }
  return out;
}

}  // namespace totoro::lint
