#include "tools/lint/allowlist.h"

#include <sstream>

namespace totoro::lint {

std::vector<AllowEntry> ParseAllowlist(const std::string& text,
                                       std::vector<std::string>* errors) {
  std::vector<AllowEntry> entries;
  std::istringstream stream(text);
  std::string line;
  int lineno = 0;
  while (std::getline(stream, line)) {
    ++lineno;
    const size_t hash = line.find('#');
    if (hash != std::string::npos) {
      line = line.substr(0, hash);
    }
    std::istringstream fields(line);
    AllowEntry e;
    e.line = lineno;
    if (!(fields >> e.rule)) {
      continue;  // Blank or comment-only line.
    }
    if (!(fields >> e.file >> e.symbol)) {
      if (errors != nullptr) {
        errors->push_back("allow.txt:" + std::to_string(lineno) +
                          ": expected `<rule> <file> <symbol>`");
      }
      continue;
    }
    entries.push_back(e);
  }
  return entries;
}

std::vector<Finding> FilterAllowed(const std::vector<Finding>& findings,
                                   std::vector<AllowEntry>* entries) {
  std::vector<Finding> violations;
  for (const Finding& f : findings) {
    bool allowed = false;
    for (AllowEntry& e : *entries) {
      if (e.rule == f.rule && f.symbol == e.symbol &&
          f.file.find(e.file) != std::string::npos) {
        e.used = true;
        allowed = true;
      }
    }
    if (!allowed) {
      violations.push_back(f);
    }
  }
  return violations;
}

}  // namespace totoro::lint
