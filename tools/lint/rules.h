// totoro_lint rule engine.
//
// Rules enforced (see DESIGN.md "Static analysis & determinism rules"):
//   R1  No nondeterminism sources in the deterministic-simulation directories
//       (src/{sim,dht,pubsub,core,faultsim,bandit}): std::random_device, rand()/srand(),
//       time()/clock()/gettimeofday(), and the <chrono> wall clocks
//       (system_clock/steady_clock/high_resolution_clock). getenv() is checked across
//       the whole tree and is sanctioned only inside src/common/env.*.
//   R2  No range-for or iterator (`.begin()`) loops over std::unordered_map /
//       std::unordered_set in the deterministic directories, unless the loop line (or
//       the line above it) carries `// LINT: order-independent` with a justification.
//       Member containers declared in headers are resolved through `#include "..."`
//       tracking, so a loop in a .cc over a member declared in its .h is still caught.
//   R3  No pointer-keyed std::map/std::set, and no relational comparison between two
//       raw-pointer locals, in the deterministic directories (pointer order is
//       allocator-dependent and must never feed a scheduling decision).
//   R4  Every obs metric name literal passed to GetCounter/GetGauge/GetHistogram under
//       src/ matches the `layer.noun_verb` convention (lowercase dot-separated
//       [a-z][a-z0-9_]* segments, >= 2 segments; a trailing '.' marks a composed
//       prefix) and each full name is registered at exactly one site with one kind.
//   R5  Every bench binary (bench/bench_*.cc) emits a machine-readable BenchReport:
//       the file must reference the `BenchReport` identifier (src/obs/bench_report.h).
//       ASCII-only benches are invisible to tools/benchdiff regression gating.
//   R6  Every committed baseline bench/baselines/BENCH_<name>.json must have its
//       producing bench binary `bench_<name>` referenced inside the bench-telemetry
//       job of .github/workflows/ci.yml. A baseline CI never regenerates either goes
//       stale forever or hard-fails benchdiff with "current run produced no ..." —
//       both mean the gate is not gating.
//   R7  No mutable `static` / `thread_local` state in the shard-deterministic
//       directories (src/{sim,core,pubsub,dht,fl,obs}): a static shared across
//       worker threads races, and a static thread_local silently forks per-shard
//       copies whose values depend on the shard layout (the PR 9 bug class).
//       const/constexpr statics and function declarations are fine; so is the one
//       documented idiom — `static thread_local Counter* c = &GlobalMetrics().Get…`
//       caches re-resolved per thread against that thread's own sink. Anything else
//       needs `// LINT: thread-confined <why>` or an allowlist entry.
//   R8  Host-protocol entry points (methods named `Start…` in src/{dht,pubsub})
//       that schedule timer/self-rescheduling events (`Schedule`/`ScheduleAt`) must
//       wrap the scheduling in `RunAsHost`, so keep-alive/maintenance loops join the
//       host's canonical event stream instead of the control stream (where their
//       keys — and therefore the whole replay — would depend on call order from the
//       harness thread). Escape: `// LINT: host-context <why>`.
//   R9  Every use of a `std::atomic` member under src/ must be an explicit member
//       call (`load/store/fetch_*/exchange/compare_exchange…`): implicit-conversion
//       reads and `=` stores hide a seq_cst access that both obscures the intended
//       ordering and silently mixes with relaxed accesses elsewhere. Additionally,
//       one member must not mix relaxed with (explicit or implied) seq_cst orders
//       across its call sites. Escape: `// LINT: atomic-access-ok <why>`.
//
// The engine is lexer-level by design: no LLVM/clang dependency, so it builds with the
// project toolchain and runs in a few hundred milliseconds over the whole tree. The
// trade-off is heuristic type resolution; the allowlist (allowlist.h) absorbs audited
// exceptions and must shrink, never grow.
#ifndef TOOLS_LINT_RULES_H_
#define TOOLS_LINT_RULES_H_

#include <string>
#include <vector>

namespace totoro::lint {

struct SourceFile {
  std::string path;     // Repo-relative, forward slashes (e.g. "src/sim/simulator.cc").
  std::string content;  // Full file text.
};

struct Finding {
  std::string rule;    // "R1".."R9".
  std::string file;    // Repo-relative path.
  int line = 0;        // 1-based.
  std::string symbol;  // Offending identifier / metric name; allowlist match key.
  std::string message;
};

struct LintOptions {
  // Directories whose code must be bit-deterministic (R1 clocks/rand, R2, R3).
  std::vector<std::string> determinism_dirs = {"src/sim",      "src/dht",  "src/pubsub",
                                               "src/core",     "src/faultsim",
                                               "src/bandit"};
  // The single sanctioned getenv site; path prefix match (env.h + env.cc).
  std::string env_sanctioned_prefix = "src/common/env.";
  // R4 scans files under this prefix.
  std::string metric_dir = "src/";
  // R5 applies to files matching this path prefix (bench binaries).
  std::string bench_prefix = "bench/bench_";
  // R6 inputs, filled by the driver (not derivable from the lexed source set):
  // committed baseline filenames (e.g. "BENCH_micro.json") and the CI workflow text.
  // An empty workflow text disables R6 (e.g. unit tests exercising other rules).
  std::vector<std::string> baseline_names;
  std::string ci_workflow_text;
  std::string ci_workflow_path = ".github/workflows/ci.yml";
  std::string baselines_dir = "bench/baselines";
  // R7 scans these directories for mutable static / thread_local state. Wider than
  // determinism_dirs: src/fl and src/obs host worker-thread code (compute pool,
  // per-thread sinks) where ambient statics are exactly as dangerous.
  std::vector<std::string> mutable_static_dirs = {"src/sim", "src/core", "src/pubsub",
                                                  "src/dht", "src/fl",   "src/obs"};
  // R8 scans these directories for Start… entry points that self-schedule.
  std::vector<std::string> host_protocol_dirs = {"src/dht", "src/pubsub"};
  // R9 checks atomic-member access discipline in files under this prefix.
  std::string atomic_scope_prefix = "src/";
};

// Runs all rules over `files` (every file is both a lint target and an include-
// resolution source). Findings are ordered by file, then line, then rule.
std::vector<Finding> RunLint(const std::vector<SourceFile>& files,
                             const LintOptions& options);

// One finding per line: "file:line: [rule] message".
std::string FormatFinding(const Finding& f);

}  // namespace totoro::lint

#endif  // TOOLS_LINT_RULES_H_
