#include "tools/lint/rules.h"

#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "tools/lint/lexer.h"

namespace totoro::lint {

namespace {

bool StartsWith(const std::string& s, const std::string& prefix) {
  return s.size() >= prefix.size() && s.compare(0, prefix.size(), prefix) == 0;
}

bool EndsWith(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

bool UnderDir(const std::string& path, const std::string& dir) {
  return StartsWith(path, dir + "/") || path == dir;
}

bool InDirs(const std::string& path, const std::vector<std::string>& dirs) {
  return std::any_of(dirs.begin(), dirs.end(),
                     [&](const std::string& d) { return UnderDir(path, d); });
}

bool InDeterminismDirs(const std::string& path, const LintOptions& options) {
  return InDirs(path, options.determinism_dirs);
}

bool IsIdent(const Token& t, const char* text) {
  return t.kind == TokenKind::kIdentifier && t.text == text;
}

// True when tokens[i] (an identifier) is written as a member access (`x.f`, `x->f`) or
// a qualified name whose outermost namespace is not `std` (`Clock::time` stays quiet,
// `std::chrono::steady_clock` does not). Used by the free-function / clock checks.
bool IsMemberOrForeignQualified(const std::vector<Token>& toks, size_t i) {
  if (i == 0) {
    return false;
  }
  const Token& prev = toks[i - 1];
  if (prev.kind == TokenKind::kPunct && (prev.text == "." || prev.text == "->")) {
    return true;
  }
  if (prev.kind == TokenKind::kPunct && prev.text == "::") {
    // Walk to the head of the `a::b::c` chain and test whether it starts at std.
    size_t j = i;
    while (j >= 2 && toks[j - 1].kind == TokenKind::kPunct && toks[j - 1].text == "::" &&
           toks[j - 2].kind == TokenKind::kIdentifier) {
      j -= 2;
    }
    return !IsIdent(toks[j], "std");
  }
  return false;
}

bool NextIs(const std::vector<Token>& toks, size_t i, const char* punct) {
  return i + 1 < toks.size() && toks[i + 1].kind == TokenKind::kPunct &&
         toks[i + 1].text == punct;
}

// Skips a balanced <...> starting at the `<` at index i; returns the index one past the
// closing `>`, or toks.size() when unbalanced.
size_t SkipAngles(const std::vector<Token>& toks, size_t i) {
  int depth = 0;
  for (; i < toks.size(); ++i) {
    if (toks[i].kind != TokenKind::kPunct) {
      continue;
    }
    if (toks[i].text == "<") {
      ++depth;
    } else if (toks[i].text == ">") {
      if (--depth == 0) {
        return i + 1;
      }
    } else if (toks[i].text == ";") {
      break;  // Unbalanced (comparison, not a template argument list); bail out.
    }
  }
  return toks.size();
}

bool HasAnnotation(const LexedFile& lexed, int line, const std::string& tag) {
  for (int l : {line, line - 1}) {
    auto it = lexed.annotations.find(l);
    if (it != lexed.annotations.end() && StartsWith(it->second, tag)) {
      return true;
    }
  }
  return false;
}

// --- R2 support: unordered-container name collection -------------------------------

struct UnorderedNames {
  std::set<std::string> variables;  // Declared unordered_{map,set} variables/members.
  std::set<std::string> aliases;    // `using X = std::unordered_map<...>` aliases.
  // Names also declared with some other template type anywhere in the include closure
  // (`std::vector<NodeId> topics_` next to scribe's unordered `topics_`). Such a name
  // is ambiguous at lexer level, so R2 stays quiet on it rather than false-positive.
  std::set<std::string> otherwise_typed;
};

void CollectUnorderedNames(const LexedFile& lexed, UnorderedNames* out) {
  const std::vector<Token>& toks = lexed.tokens;
  for (size_t i = 0; i < toks.size(); ++i) {
    if (!(IsIdent(toks[i], "unordered_map") || IsIdent(toks[i], "unordered_set"))) {
      continue;
    }
    if (!NextIs(toks, i, "<")) {
      continue;  // Bare mention (e.g. in a comment-stripped include) — nothing declared.
    }
    const size_t after = SkipAngles(toks, i + 1);
    // Step back over an `std::` qualifier, then look for `using Alias =` before it.
    size_t q = i;
    if (q >= 2 && toks[q - 1].kind == TokenKind::kPunct && toks[q - 1].text == "::" &&
        IsIdent(toks[q - 2], "std")) {
      q -= 2;
    }
    const bool is_alias = q >= 3 && toks[q - 1].kind == TokenKind::kPunct &&
                          toks[q - 1].text == "=" &&
                          toks[q - 2].kind == TokenKind::kIdentifier &&
                          IsIdent(toks[q - 3], "using");
    if (is_alias) {
      out->aliases.insert(toks[q - 2].text);
      continue;
    }
    if (after < toks.size() && toks[after].kind == TokenKind::kIdentifier) {
      out->variables.insert(toks[after].text);
    }
  }
}

// Declarations through collected aliases (`Alias name;` / `Alias name =`). Runs after
// every closure file contributed its aliases, so header-defined aliases resolve in .cc
// files regardless of traversal order.
void CollectAliasUses(const LexedFile& lexed, UnorderedNames* out) {
  const std::vector<Token>& toks = lexed.tokens;
  for (size_t i = 0; i + 1 < toks.size(); ++i) {
    if (toks[i].kind == TokenKind::kIdentifier && out->aliases.count(toks[i].text) &&
        toks[i + 1].kind == TokenKind::kIdentifier &&
        !IsMemberOrForeignQualified(toks, i)) {
      out->variables.insert(toks[i + 1].text);
    }
  }
}

// Collects `SomeTemplate<...> name` declarations whose template is neither an
// unordered container nor a known unordered alias, to veto ambiguous names.
void CollectOtherwiseTypedNames(const LexedFile& lexed, UnorderedNames* out) {
  const std::vector<Token>& toks = lexed.tokens;
  for (size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].kind != TokenKind::kIdentifier ||
        toks[i].text == "unordered_map" || toks[i].text == "unordered_set" ||
        out->aliases.count(toks[i].text) || !NextIs(toks, i, "<")) {
      continue;
    }
    const size_t after = SkipAngles(toks, i + 1);
    if (after + 1 >= toks.size() || toks[after].kind != TokenKind::kIdentifier) {
      continue;
    }
    const Token& trail = toks[after + 1];
    if (trail.kind == TokenKind::kPunct &&
        (trail.text == ";" || trail.text == "=" || trail.text == "," ||
         trail.text == ")" || trail.text == "{")) {
      out->otherwise_typed.insert(toks[after].text);
    }
  }
}

// --- R3 support: raw-pointer local collection --------------------------------------

// Heuristic `Type* name` / `auto* name` declarations. The preceding-token check keeps
// multiplications inside larger expressions (`x = a * b`) out of the set.
std::set<std::string> CollectPointerNames(const LexedFile& lexed) {
  std::set<std::string> out;
  const std::vector<Token>& toks = lexed.tokens;
  for (size_t i = 1; i + 1 < toks.size(); ++i) {
    if (!(toks[i].kind == TokenKind::kPunct && toks[i].text == "*")) {
      continue;
    }
    if (toks[i - 1].kind != TokenKind::kIdentifier ||
        toks[i + 1].kind != TokenKind::kIdentifier) {
      continue;
    }
    // After the declared name we expect `;`, `=`, `,`, `)`, or a range-for `:`.
    if (i + 2 < toks.size()) {
      const Token& after = toks[i + 2];
      if (!(after.kind == TokenKind::kPunct &&
            (after.text == ";" || after.text == "=" || after.text == "," ||
             after.text == ")" || after.text == ":"))) {
        continue;
      }
    }
    // Before the type we expect a statement/parameter boundary, not an expression.
    if (i >= 2) {
      const Token& before = toks[i - 2];
      const bool boundary =
          (before.kind == TokenKind::kPunct &&
           (before.text == ";" || before.text == "{" || before.text == "}" ||
            before.text == "(" || before.text == "," || before.text == ">")) ||
          IsIdent(before, "const") || IsIdent(before, "constexpr") ||
          IsIdent(before, "static");
      if (!boundary) {
        continue;
      }
    }
    out.insert(toks[i + 1].text);
  }
  return out;
}

// --- Rules -------------------------------------------------------------------------

void CheckR1(const std::string& path, const LexedFile& lexed, const LintOptions& options,
             std::vector<Finding>* findings) {
  const bool deterministic = InDeterminismDirs(path, options);
  const bool env_sanctioned = StartsWith(path, options.env_sanctioned_prefix);
  const std::vector<Token>& toks = lexed.tokens;
  static const std::set<std::string> kAlwaysBad = {
      "random_device",         "srand",        "gettimeofday",
      "system_clock",          "steady_clock", "high_resolution_clock",
      "clock_gettime",         "timespec_get", "rand_r"};
  static const std::set<std::string> kBadCalls = {"rand", "time", "clock"};
  for (size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind != TokenKind::kIdentifier) {
      continue;
    }
    if (t.text == "getenv" && !env_sanctioned && NextIs(toks, i, "(") &&
        !IsMemberOrForeignQualified(toks, i)) {
      findings->push_back({"R1", path, t.line, "getenv",
                           "direct getenv() call; route environment reads through "
                           "totoro::Env* in src/common/env.h"});
      continue;
    }
    if (!deterministic) {
      continue;
    }
    if (kAlwaysBad.count(t.text) && !IsMemberOrForeignQualified(toks, i)) {
      findings->push_back({"R1", path, t.line, t.text,
                           "nondeterminism source `" + t.text +
                               "` in a deterministic-simulation directory; use the "
                               "seeded totoro::Rng or virtual time (Simulator::Now)"});
      continue;
    }
    if (kBadCalls.count(t.text) && NextIs(toks, i, "(") &&
        !IsMemberOrForeignQualified(toks, i)) {
      findings->push_back({"R1", path, t.line, t.text,
                           "call to `" + t.text +
                               "()` in a deterministic-simulation directory; use the "
                               "seeded totoro::Rng or virtual time (Simulator::Now)"});
    }
  }
}

void CheckR2(const std::string& path, const LexedFile& lexed,
             const UnorderedNames& names, const LintOptions& options,
             std::vector<Finding>* findings) {
  if (!InDeterminismDirs(path, options)) {
    return;
  }
  const std::vector<Token>& toks = lexed.tokens;
  for (size_t i = 0; i < toks.size(); ++i) {
    // Range-for whose range expression terminates in an unordered container name.
    if (IsIdent(toks[i], "for") && NextIs(toks, i, "(")) {
      int depth = 0;
      size_t colon = 0;
      size_t close = 0;
      for (size_t j = i + 1; j < toks.size(); ++j) {
        if (toks[j].kind != TokenKind::kPunct) {
          continue;
        }
        if (toks[j].text == "(") {
          ++depth;
        } else if (toks[j].text == ")") {
          if (--depth == 0) {
            close = j;
            break;
          }
        } else if (toks[j].text == ":" && depth == 1 && colon == 0) {
          colon = j;
        }
      }
      if (colon != 0 && close != 0 && close > colon + 1) {
        const Token& last = toks[close - 1];
        if (last.kind == TokenKind::kIdentifier && names.variables.count(last.text) &&
            !HasAnnotation(lexed, toks[i].line, "order-independent")) {
          findings->push_back(
              {"R2", path, toks[i].line, last.text,
               "range-for over unordered container `" + last.text +
                   "`; iteration order is hash-dependent — use an ordered container "
                   "or annotate the loop `// LINT: order-independent <why>`"});
        }
      }
      continue;
    }
    // Iterator-style traversal: `name.begin()` / `name.cbegin()`.
    if (toks[i].kind == TokenKind::kIdentifier && names.variables.count(toks[i].text) &&
        i + 2 < toks.size() && toks[i + 1].kind == TokenKind::kPunct &&
        (toks[i + 1].text == "." || toks[i + 1].text == "->") &&
        (IsIdent(toks[i + 2], "begin") || IsIdent(toks[i + 2], "cbegin")) &&
        NextIs(toks, i + 2, "(") &&
        !HasAnnotation(lexed, toks[i].line, "order-independent")) {
      findings->push_back(
          {"R2", path, toks[i].line, toks[i].text,
           "iterator traversal of unordered container `" + toks[i].text +
               "`; iteration order is hash-dependent — use an ordered container or "
               "annotate the line `// LINT: order-independent <why>`"});
    }
  }
}

void CheckR3(const std::string& path, const LexedFile& lexed, const LintOptions& options,
             std::vector<Finding>* findings) {
  if (!InDeterminismDirs(path, options)) {
    return;
  }
  const std::vector<Token>& toks = lexed.tokens;
  // Pointer-keyed ordered containers: std::map<T*, ...> / std::set<T*>.
  for (size_t i = 0; i + 1 < toks.size(); ++i) {
    if (!(IsIdent(toks[i], "map") || IsIdent(toks[i], "set"))) {
      continue;
    }
    if (!(i >= 2 && toks[i - 1].text == "::" && IsIdent(toks[i - 2], "std"))) {
      continue;
    }
    if (!NextIs(toks, i, "<")) {
      continue;
    }
    // First template argument: tokens from i+2 until a `,` or the closing `>` at depth 1.
    int depth = 1;
    size_t last = 0;
    for (size_t j = i + 2; j < toks.size() && depth > 0; ++j) {
      if (toks[j].kind == TokenKind::kPunct) {
        if (toks[j].text == "<") {
          ++depth;
        } else if (toks[j].text == ">") {
          --depth;
        } else if (toks[j].text == "," && depth == 1) {
          break;
        }
      }
      if (depth > 0) {
        last = j;
      }
    }
    if (last != 0 && toks[last].kind == TokenKind::kPunct && toks[last].text == "*") {
      findings->push_back(
          {"R3", path, toks[i].line, "std::" + toks[i].text + "<T*>",
           "pointer-keyed std::" + toks[i].text +
               "; pointer order is allocator-dependent — key by a stable id instead"});
    }
  }
  // Relational comparison between two raw-pointer locals.
  const std::set<std::string> ptrs = CollectPointerNames(lexed);
  if (ptrs.empty()) {
    return;
  }
  for (size_t i = 1; i + 1 < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind != TokenKind::kPunct ||
        !(t.text == "<" || t.text == ">" || t.text == "<=" || t.text == ">=")) {
      continue;
    }
    if (toks[i - 1].kind == TokenKind::kIdentifier && ptrs.count(toks[i - 1].text) &&
        toks[i + 1].kind == TokenKind::kIdentifier && ptrs.count(toks[i + 1].text) &&
        !HasAnnotation(lexed, t.line, "pointer-order-ok")) {
      findings->push_back(
          {"R3", path, t.line, toks[i - 1].text + t.text + toks[i + 1].text,
           "relational comparison of raw pointers `" + toks[i - 1].text + "` and `" +
               toks[i + 1].text +
               "`; pointer order is allocator-dependent and must not feed scheduling"});
    }
  }
}

bool ValidMetricName(const std::string& name, bool is_prefix) {
  size_t segments = 0;
  size_t start = 0;
  while (start <= name.size()) {
    const size_t dot = name.find('.', start);
    const std::string seg =
        name.substr(start, dot == std::string::npos ? std::string::npos : dot - start);
    if (seg.empty()) {
      // Only a trailing empty segment of a composed prefix is allowed.
      return is_prefix && dot == std::string::npos && segments >= 1;
    }
    if (!(seg[0] >= 'a' && seg[0] <= 'z')) {
      return false;
    }
    for (char c : seg) {
      if (!((c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c == '_')) {
        return false;
      }
    }
    ++segments;
    if (dot == std::string::npos) {
      break;
    }
    start = dot + 1;
  }
  return segments >= 2;
}

struct MetricSite {
  std::string kind;  // GetCounter / GetGauge / GetHistogram.
  std::string file;
  int line;
};

void CheckR4(const std::vector<std::pair<std::string, const LexedFile*>>& files,
             const LintOptions& options, std::vector<Finding>* findings) {
  std::map<std::string, std::vector<MetricSite>> sites;  // Full names only.
  for (const auto& [path, lexed] : files) {
    if (!StartsWith(path, options.metric_dir)) {
      continue;
    }
    const std::vector<Token>& toks = lexed->tokens;
    for (size_t i = 0; i + 2 < toks.size(); ++i) {
      if (!(IsIdent(toks[i], "GetCounter") || IsIdent(toks[i], "GetGauge") ||
            IsIdent(toks[i], "GetHistogram"))) {
        continue;
      }
      if (!NextIs(toks, i, "(") || toks[i + 2].kind != TokenKind::kString) {
        continue;  // API declaration or a dynamic name; nothing checkable here.
      }
      const std::string& name = toks[i + 2].text;
      const bool is_prefix =
          i + 3 < toks.size() && toks[i + 3].kind == TokenKind::kPunct &&
          toks[i + 3].text == "+";
      if (!ValidMetricName(name, is_prefix)) {
        findings->push_back(
            {"R4", path, toks[i + 2].line, name,
             "metric name `" + name +
                 "` violates the `layer.noun_verb` convention (lowercase "
                 "dot-separated [a-z][a-z0-9_]* segments, >= 2 segments)"});
      }
      if (!is_prefix) {
        sites[name].push_back({toks[i].text, path, toks[i + 2].line});
      }
    }
  }
  for (const auto& [name, regs] : sites) {
    if (regs.size() <= 1) {
      continue;
    }
    for (size_t k = 1; k < regs.size(); ++k) {
      const bool kind_clash = regs[k].kind != regs[0].kind;
      findings->push_back(
          {"R4", regs[k].file, regs[k].line, name,
           "metric `" + name + "` already registered at " + regs[0].file + ":" +
               std::to_string(regs[0].line) +
               (kind_clash ? " with a different kind (" + regs[0].kind + " vs " +
                                 regs[k].kind + ")"
                           : "; register once and cache the returned pointer")});
    }
  }
}

// R5: every bench binary fills a BenchReport so tools/benchdiff can gate it. A lexer-
// level identifier check is enough — the type has no reason to be named except to
// construct or receive one, and benches use the explicit type name (never `auto`).
void CheckR5(const std::string& path, const LexedFile& lexed, const LintOptions& options,
             std::vector<Finding>* findings) {
  if (!StartsWith(path, options.bench_prefix) || !EndsWith(path, ".cc")) {
    return;
  }
  for (const Token& t : lexed.tokens) {
    if (IsIdent(t, "BenchReport")) {
      return;
    }
  }
  findings->push_back({"R5", path, 1, "BenchReport",
                       "bench binary never references BenchReport; emit BENCH_<name>."
                       "json via src/obs/bench_report.h so tools/benchdiff can gate "
                       "regressions (no ASCII-only benches)"});
}

// R6: every committed bench baseline must be kept honest by CI. The driver hands us
// the baseline filenames and the raw workflow text; we slice out the bench-telemetry
// job (from its key to the next two-space-indented job key) and require the
// producing binary name bench_<name> to appear inside it. Purely textual — the same
// trade-off as the rest of the engine: no YAML parser, heuristics plus an allowlist.
void CheckR6(const LintOptions& options, std::vector<Finding>* findings) {
  if (options.baseline_names.empty() || options.ci_workflow_text.empty()) {
    return;
  }
  const std::string& text = options.ci_workflow_text;
  const size_t begin = text.find("\n  bench-telemetry:");
  if (begin == std::string::npos) {
    findings->push_back({"R6", options.ci_workflow_path, 1, "bench-telemetry",
                         "baselines are committed in " + options.baselines_dir +
                             " but the workflow has no bench-telemetry job to "
                             "regenerate and gate them"});
    return;
  }
  // End of the job: the next line that is exactly two-space indented (a sibling job
  // key). Step lines inside the job are indented four or more.
  size_t end = text.size();
  for (size_t pos = text.find('\n', begin + 1); pos != std::string::npos;
       pos = text.find('\n', pos + 1)) {
    if (pos + 3 < text.size() && text[pos + 1] == ' ' && text[pos + 2] == ' ' &&
        text[pos + 3] != ' ' && text[pos + 3] != '\n' && text[pos + 3] != '#') {
      end = pos;
      break;
    }
  }
  const std::string job = text.substr(begin, end - begin);
  for (const std::string& baseline : options.baseline_names) {
    // "BENCH_micro.json" -> "bench_micro".
    const std::string stem = baseline.substr(6, baseline.size() - 6 - 5);
    const std::string bench = "bench_" + stem;
    if (job.find(bench) == std::string::npos) {
      findings->push_back(
          {"R6", options.baselines_dir + "/" + baseline, 1, bench,
           "committed baseline is never regenerated by CI: run `" + bench +
               "` in the bench-telemetry job of " + options.ci_workflow_path +
               " (or delete the baseline)"});
    }
  }
}

// --- R7: mutable static / thread_local state ---------------------------------------

// True when the declaration's initializer (tokens from `from` to the next `;`) resolves
// through a per-thread observability sink. `static thread_local Counter* c =
// &GlobalMetrics().GetCounter(...)` is the documented cache idiom: each thread re-runs
// the initializer against its OWN registry, so the cached pointer never crosses
// threads and the coordinator fold stays exact. Anything else static is suspect.
bool InitializerIsSinkCache(const std::vector<Token>& toks, size_t from) {
  for (size_t j = from; j < toks.size(); ++j) {
    if (toks[j].kind == TokenKind::kPunct && toks[j].text == ";") {
      break;
    }
    if (IsIdent(toks[j], "GlobalMetrics") || IsIdent(toks[j], "GlobalTracer") ||
        IsIdent(toks[j], "GlobalProfiler")) {
      return true;
    }
  }
  return false;
}

// R7: the PR 9 bug class. A mutable `static` in a shard-deterministic directory is
// shared across worker threads (a race); a `static thread_local` silently forks one
// copy per worker, so its value depends on the shard layout and K=4 diverges from
// K=1. Both are invisible at the call site, which is why review kept missing them.
void CheckR7(const std::string& path, const LexedFile& lexed, const LintOptions& options,
             std::vector<Finding>* findings) {
  if (!InDirs(path, options.mutable_static_dirs)) {
    return;
  }
  const std::vector<Token>& toks = lexed.tokens;
  for (size_t i = 0; i < toks.size(); ++i) {
    if (!(IsIdent(toks[i], "static") || IsIdent(toks[i], "thread_local"))) {
      continue;
    }
    bool thread_local_seen = IsIdent(toks[i], "thread_local");
    size_t j = i + 1;
    while (j < toks.size() &&
           (IsIdent(toks[j], "static") || IsIdent(toks[j], "thread_local"))) {
      thread_local_seen = thread_local_seen || IsIdent(toks[j], "thread_local");
      ++j;
    }
    // Walk the declaration to its first structural terminator. `(` first means a
    // function declaration/definition (static member helpers) — not state at all.
    bool is_const = false;
    std::string name;
    char term = 0;
    size_t term_index = toks.size();
    for (size_t k = j; k < toks.size(); ++k) {
      const Token& t = toks[k];
      if (t.kind == TokenKind::kIdentifier) {
        if (t.text == "const" || t.text == "constexpr" || t.text == "constinit") {
          is_const = true;
        } else {
          name = t.text;
        }
        continue;
      }
      if (t.kind == TokenKind::kPunct &&
          (t.text == ";" || t.text == "=" || t.text == "{" || t.text == "(" ||
           t.text == "}")) {
        term = t.text[0];
        term_index = k;
        break;
      }
    }
    i = j - 1;  // Never re-match the same storage-class run.
    if (term == 0 || term == '(' || term == '}' || name.empty() || is_const) {
      continue;
    }
    if ((term == '=' || term == '{') && InitializerIsSinkCache(toks, term_index)) {
      continue;
    }
    if (HasAnnotation(lexed, toks[i].line, "thread-confined")) {
      continue;
    }
    findings->push_back(
        {"R7", path, toks[i].line, name,
         thread_local_seen
             ? "mutable `thread_local` state `" + name +
                   "` in a shard-deterministic directory: each worker forks its own "
                   "copy, so values depend on the shard layout (K=4 diverges from "
                   "K=1) — move the state onto the owning object, or annotate "
                   "`// LINT: thread-confined <why>`"
             : "mutable `static` state `" + name +
                   "` in a shard-deterministic directory: shared across shard "
                   "workers, so access races and the result depends on thread "
                   "interleaving — move the state onto the owning object, or "
                   "annotate `// LINT: thread-confined <why>`"});
  }
}

// --- R8: host-protocol entry points must schedule in host context -------------------

// `Start…` methods (StartKeepAlive, StartMaintenance, …) are called from harness /
// driver code, OUTSIDE any host event. A bare Schedule there lands the timer chain on
// the sharded engine's control stream: its event keys are allocated in harness call
// order, not the host's canonical order, and the whole replay stops being
// shard-layout-blind. Wrapping in RunAsHost(host, …) joins the host's stream. Ticks
// that reschedule from INSIDE their own event already run in host context, and live
// in plain (non-Start) methods, so the rule only bites the entry points.
void CheckR8(const std::string& path, const LexedFile& lexed, const LintOptions& options,
             std::vector<Finding>* findings) {
  if (!InDirs(path, options.host_protocol_dirs)) {
    return;
  }
  const std::vector<Token>& toks = lexed.tokens;
  for (size_t i = 1; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind != TokenKind::kIdentifier || t.text.size() < 6 ||
        t.text.compare(0, 5, "Start") != 0 || t.text[5] < 'A' || t.text[5] > 'Z' ||
        !NextIs(toks, i, "(")) {
      continue;
    }
    // Definitions only: preceded by a return type or `Class::` qualifier. Call sites
    // sit after statement punctuation (`;`, `{`) or inside expressions (`(`, `.`).
    const Token& prev = toks[i - 1];
    const bool def_shape =
        prev.kind == TokenKind::kIdentifier ||
        (prev.kind == TokenKind::kPunct &&
         (prev.text == "::" || prev.text == "*" || prev.text == "&" || prev.text == ">"));
    if (!def_shape) {
      continue;
    }
    // Parameter list, then trailing qualifiers, then `{` (a `;` is a declaration).
    int depth = 0;
    size_t k = i + 1;
    for (; k < toks.size(); ++k) {
      if (toks[k].kind != TokenKind::kPunct) {
        continue;
      }
      if (toks[k].text == "(") {
        ++depth;
      } else if (toks[k].text == ")" && --depth == 0) {
        ++k;
        break;
      }
    }
    size_t body = 0;
    for (; k < toks.size(); ++k) {
      if (toks[k].kind != TokenKind::kPunct) {
        continue;  // const / noexcept / override.
      }
      if (toks[k].text == "{") {
        body = k;
      }
      break;
    }
    if (body == 0) {
      continue;  // Declaration, or something the heuristic cannot shape-match.
    }
    bool schedules = false;
    bool runs_as_host = false;
    depth = 0;
    for (k = body; k < toks.size(); ++k) {
      if (toks[k].kind == TokenKind::kPunct) {
        if (toks[k].text == "{") {
          ++depth;
        } else if (toks[k].text == "}" && --depth == 0) {
          break;
        }
        continue;
      }
      if (toks[k].kind != TokenKind::kIdentifier || !NextIs(toks, k, "(")) {
        continue;
      }
      if (toks[k].text == "Schedule" || toks[k].text == "ScheduleAt") {
        schedules = true;
      } else if (toks[k].text == "RunAsHost") {
        runs_as_host = true;
      }
    }
    if (schedules && !runs_as_host && !HasAnnotation(lexed, t.line, "host-context")) {
      findings->push_back(
          {"R8", path, t.line, t.text,
           "host-protocol entry point `" + t.text +
               "` schedules events without RunAsHost: called from harness code, the "
               "timer chain lands on the sharded engine's control stream and its "
               "event keys depend on driver call order — wrap the scheduling in "
               "sim->RunAsHost(host, …) (or annotate `// LINT: host-context <why>` "
               "if the method is only ever called from inside a host event)"});
    }
  }
}

// --- R9: explicit atomic access, one ordering discipline per member -----------------

// Declared `std::atomic<…> name` member/variable names in one file.
void CollectAtomicNames(const LexedFile& lexed, std::set<std::string>* out) {
  const std::vector<Token>& toks = lexed.tokens;
  for (size_t i = 0; i < toks.size(); ++i) {
    if (!IsIdent(toks[i], "atomic") || !NextIs(toks, i, "<")) {
      continue;
    }
    const size_t after = SkipAngles(toks, i + 1);
    if (after < toks.size() && toks[after].kind == TokenKind::kIdentifier) {
      out->insert(toks[after].text);
    }
  }
}

struct AtomicOrderSite {
  std::string file;
  int line = 0;
};

// First-seen site per (member, memory order); "seq_cst" covers both explicit
// memory_order_seq_cst and order-less calls (the default).
using AtomicOrderMap = std::map<std::string, std::map<std::string, AtomicOrderSite>>;

// R9: atomics are only honest when every access says what it is. An implicit
// conversion read (`uint64_t n = dropped_;`) or `=` store is a hidden seq_cst access:
// it dodges the snapshot discipline (explicit load() into a by-value stats struct)
// and silently mixes with the relaxed fetch_adds on the hot path. The cross-file
// mixed-order check catches the second half of that bug even when each site is
// individually explicit.
void CheckR9(const std::string& path, const LexedFile& lexed,
             const std::set<std::string>& atomic_names, const LintOptions& options,
             std::vector<Finding>* findings, AtomicOrderMap* orders) {
  if (atomic_names.empty() || !StartsWith(path, options.atomic_scope_prefix)) {
    return;
  }
  static const std::set<std::string> kOrderedOps = {
      "load",          "store",         "exchange",
      "fetch_add",     "fetch_sub",     "fetch_and",
      "fetch_or",      "fetch_xor",     "compare_exchange_weak",
      "compare_exchange_strong",        "wait"};
  static const std::set<std::string> kOrderlessOps = {"notify_one", "notify_all",
                                                      "is_lock_free"};
  const std::vector<Token>& toks = lexed.tokens;
  for (size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind != TokenKind::kIdentifier || !atomic_names.count(t.text)) {
      continue;
    }
    if (i > 0 && toks[i - 1].kind == TokenKind::kPunct) {
      const std::string& p = toks[i - 1].text;
      if (p == ">") {
        continue;  // The declaration itself: `std::atomic<T> name…`.
      }
      if (p == "." || p == "->" || p == "::" || p == "&") {
        // Qualified access on some other object (likely a same-named non-atomic
        // field of a by-value snapshot struct), or address-of; out of scope.
        continue;
      }
    }
    if (HasAnnotation(lexed, t.line, "atomic-access-ok")) {
      continue;
    }
    const bool member_call =
        i + 2 < toks.size() && toks[i + 1].kind == TokenKind::kPunct &&
        toks[i + 1].text == "." && toks[i + 2].kind == TokenKind::kIdentifier &&
        NextIs(toks, i + 2, "(");
    if (!member_call) {
      findings->push_back(
          {"R9", path, t.line, t.text,
           "implicit access to atomic member `" + t.text +
               "`: conversion reads and `=` stores hide a seq_cst operation — use "
               "explicit .load()/.store() (snapshot paths load into a by-value "
               "stats struct)"});
      continue;
    }
    const std::string& op = toks[i + 2].text;
    if (kOrderlessOps.count(op)) {
      continue;
    }
    if (!kOrderedOps.count(op)) {
      findings->push_back({"R9", path, t.line, t.text,
                           "unrecognized member access `." + op +
                               "` on atomic member `" + t.text +
                               "`; use the explicit std::atomic API"});
      continue;
    }
    // Memory orders in the call's argument list; none means the seq_cst default.
    bool any_order = false;
    int depth = 0;
    for (size_t k = i + 3; k < toks.size(); ++k) {
      if (toks[k].kind == TokenKind::kPunct) {
        if (toks[k].text == "(") {
          ++depth;
        } else if (toks[k].text == ")" && --depth == 0) {
          break;
        }
        continue;
      }
      if (toks[k].kind == TokenKind::kIdentifier &&
          StartsWith(toks[k].text, "memory_order_")) {
        any_order = true;
        (*orders)[t.text].emplace(toks[k].text.substr(13),
                                  AtomicOrderSite{path, t.line});
      }
    }
    if (!any_order) {
      (*orders)[t.text].emplace("seq_cst", AtomicOrderSite{path, t.line});
    }
  }
}

// Emitted once after every file was scanned: a member whose call sites mix relaxed
// with (explicit or defaulted) seq_cst has no coherent ordering story.
void FlagMixedAtomicOrders(const AtomicOrderMap& orders,
                           std::vector<Finding>* findings) {
  for (const auto& [name, by_order] : orders) {
    auto relaxed = by_order.find("relaxed");
    auto seq_cst = by_order.find("seq_cst");
    if (relaxed == by_order.end() || seq_cst == by_order.end()) {
      continue;
    }
    findings->push_back(
        {"R9", seq_cst->second.file, seq_cst->second.line, name,
         "atomic member `" + name + "` mixes memory_order_relaxed (" +
             relaxed->second.file + ":" + std::to_string(relaxed->second.line) +
             ") with seq_cst at this site; pick one ordering discipline per member"});
  }
}

}  // namespace

std::vector<Finding> RunLint(const std::vector<SourceFile>& files,
                             const LintOptions& options) {
  // Lex everything once; files double as include-resolution sources.
  std::map<std::string, LexedFile> lexed;
  for (const SourceFile& f : files) {
    lexed.emplace(f.path, Lex(f.content));
  }

  std::vector<Finding> findings;
  std::vector<std::pair<std::string, const LexedFile*>> lexed_list;
  lexed_list.reserve(lexed.size());
  for (const auto& [path, lf] : lexed) {
    lexed_list.emplace_back(path, &lf);
  }

  AtomicOrderMap atomic_orders;
  for (const auto& [path, lf] : lexed) {
    CheckR1(path, lf, options, &findings);
    CheckR3(path, lf, options, &findings);
    CheckR5(path, lf, options, &findings);
    CheckR7(path, lf, options, &findings);
    CheckR8(path, lf, options, &findings);

    // R2 needs the unordered names of this file plus its transitive project includes.
    std::set<std::string> visited;
    std::vector<std::string> frontier = {path};
    std::vector<const LexedFile*> closure;
    while (!frontier.empty()) {
      const std::string cur = frontier.back();
      frontier.pop_back();
      if (!visited.insert(cur).second) {
        continue;
      }
      auto it = lexed.find(cur);
      if (it == lexed.end()) {
        continue;  // System header or a file outside the scanned set.
      }
      closure.push_back(&it->second);
      for (const std::string& inc : it->second.quoted_includes) {
        frontier.push_back(inc);
      }
    }
    UnorderedNames names;
    for (const LexedFile* f : closure) {
      CollectUnorderedNames(*f, &names);
    }
    for (const LexedFile* f : closure) {
      CollectAliasUses(*f, &names);
      CollectOtherwiseTypedNames(*f, &names);
    }
    // Ambiguously-typed names (same identifier declared with another template type
    // somewhere in the closure) are dropped rather than risk a false positive.
    for (const std::string& name : names.otherwise_typed) {
      names.variables.erase(name);
    }
    CheckR2(path, lf, names, options, &findings);

    // R9 resolves atomic members through the same include closure (declared in the
    // header, used in the .cc), accumulating per-member orders across all files.
    std::set<std::string> atomic_names;
    for (const LexedFile* f : closure) {
      CollectAtomicNames(*f, &atomic_names);
    }
    CheckR9(path, lf, atomic_names, options, &findings, &atomic_orders);
  }

  CheckR4(lexed_list, options, &findings);
  CheckR6(options, &findings);
  FlagMixedAtomicOrders(atomic_orders, &findings);

  std::sort(findings.begin(), findings.end(), [](const Finding& a, const Finding& b) {
    if (a.file != b.file) {
      return a.file < b.file;
    }
    if (a.line != b.line) {
      return a.line < b.line;
    }
    return a.rule < b.rule;
  });
  return findings;
}

std::string FormatFinding(const Finding& f) {
  return f.file + ":" + std::to_string(f.line) + ": [" + f.rule + "] " + f.message;
}

}  // namespace totoro::lint
