// Audited-exception allowlist for totoro_lint.
//
// Format of tools/lint/allow.txt — one entry per line:
//
//   <rule> <file-suffix-or-substring> <symbol> [# justification]
//
// e.g. `R1 src/sim/simulator.cc steady_clock  # wall-clock throughput gauge only`.
// Blank lines and lines starting with '#' are ignored. An entry matches a finding when
// the rule is equal, the entry's file field is a substring of the finding's path, and
// the symbol is equal to the finding's symbol. One entry may absorb several findings
// (e.g. three steady_clock mentions in one file).
//
// Growth control: the companion file tools/lint/allow_budget.txt holds a single
// integer — the maximum number of allow entries. CI fails when entries exceed the
// budget, so the list can only shrink (fix a finding, delete its entry, lower the
// budget). Unused entries are errors too: they mean the underlying finding was fixed
// and the entry must be deleted.
#ifndef TOOLS_LINT_ALLOWLIST_H_
#define TOOLS_LINT_ALLOWLIST_H_

#include <string>
#include <vector>

#include "tools/lint/rules.h"

namespace totoro::lint {

struct AllowEntry {
  std::string rule;
  std::string file;    // Substring match against Finding::file.
  std::string symbol;  // Exact match against Finding::symbol.
  int line = 0;        // Line in allow.txt (for diagnostics).
  bool used = false;
};

// Parses allow.txt text. Malformed lines are reported through `errors`.
std::vector<AllowEntry> ParseAllowlist(const std::string& text,
                                       std::vector<std::string>* errors);

// Returns the findings not matched by any entry; marks matching entries used.
std::vector<Finding> FilterAllowed(const std::vector<Finding>& findings,
                                   std::vector<AllowEntry>* entries);

}  // namespace totoro::lint

#endif  // TOOLS_LINT_ALLOWLIST_H_
