// totoro_lint driver: walks the source tree, runs the R1–R9 rule engine, applies the
// allowlist, and exits nonzero on any unallowlisted finding, unused allow entry, or
// allowlist-budget overrun.
//
// Usage:
//   totoro_lint --root <repo> [--allow <file>] [--budget <file>] [dir ...]
//
// Default scan set (relative to --root): src tools bench examples. Only .h/.cc/.cpp
// files are read. Exit codes: 0 clean, 1 violations, 2 usage/IO error.
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "tools/lint/allowlist.h"
#include "tools/lint/rules.h"

namespace fs = std::filesystem;
using totoro::lint::AllowEntry;
using totoro::lint::Finding;
using totoro::lint::SourceFile;

namespace {

bool ReadFile(const fs::path& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return false;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  *out = buf.str();
  return true;
}

bool HasLintableExtension(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".h" || ext == ".cc" || ext == ".cpp" || ext == ".hpp";
}

}  // namespace

int main(int argc, char** argv) {
  std::string root = ".";
  std::string allow_path;
  std::string budget_path;
  std::vector<std::string> dirs;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "totoro_lint: %s requires an argument\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--root") {
      root = next("--root");
    } else if (arg == "--allow") {
      allow_path = next("--allow");
    } else if (arg == "--budget") {
      budget_path = next("--budget");
    } else if (arg == "--help") {
      std::printf(
          "usage: totoro_lint --root <repo> [--allow <file>] [--budget <file>] "
          "[dir ...]\n");
      return 0;
    } else {
      dirs.push_back(arg);
    }
  }
  if (dirs.empty()) {
    dirs = {"src", "tools", "bench", "examples"};
  }

  std::vector<SourceFile> files;
  for (const std::string& dir : dirs) {
    const fs::path base = fs::path(root) / dir;
    if (!fs::exists(base)) {
      continue;
    }
    for (const auto& entry : fs::recursive_directory_iterator(base)) {
      if (!entry.is_regular_file() || !HasLintableExtension(entry.path())) {
        continue;
      }
      SourceFile f;
      f.path = fs::relative(entry.path(), root).generic_string();
      if (!ReadFile(entry.path(), &f.content)) {
        std::fprintf(stderr, "totoro_lint: cannot read %s\n",
                     entry.path().string().c_str());
        return 2;
      }
      files.push_back(std::move(f));
    }
  }
  if (files.empty()) {
    std::fprintf(stderr, "totoro_lint: no source files found under %s\n", root.c_str());
    return 2;
  }

  totoro::lint::LintOptions options;
  // R6 inputs: committed baseline filenames and the CI workflow text. Neither lives
  // in the lexed source set, so the driver loads them here; missing files simply
  // leave the rule inactive (a tree without baselines has nothing to check).
  const fs::path baselines = fs::path(root) / options.baselines_dir;
  if (fs::is_directory(baselines)) {
    for (const auto& entry : fs::directory_iterator(baselines)) {
      const std::string name = entry.path().filename().string();
      if (entry.is_regular_file() && name.rfind("BENCH_", 0) == 0 &&
          entry.path().extension() == ".json") {
        options.baseline_names.push_back(name);
      }
    }
    std::sort(options.baseline_names.begin(), options.baseline_names.end());
  }
  const fs::path ci_workflow = fs::path(root) / options.ci_workflow_path;
  if (fs::exists(ci_workflow) && !ReadFile(ci_workflow, &options.ci_workflow_text)) {
    std::fprintf(stderr, "totoro_lint: cannot read %s\n",
                 ci_workflow.string().c_str());
    return 2;
  }

  const std::vector<Finding> findings = totoro::lint::RunLint(files, options);

  std::vector<AllowEntry> entries;
  int errors = 0;
  if (!allow_path.empty()) {
    std::string text;
    if (!ReadFile(allow_path, &text)) {
      std::fprintf(stderr, "totoro_lint: cannot read allowlist %s\n",
                   allow_path.c_str());
      return 2;
    }
    std::vector<std::string> parse_errors;
    entries = totoro::lint::ParseAllowlist(text, &parse_errors);
    for (const std::string& e : parse_errors) {
      std::fprintf(stderr, "totoro_lint: %s\n", e.c_str());
      ++errors;
    }
  }

  const std::vector<Finding> violations =
      totoro::lint::FilterAllowed(findings, &entries);
  for (const Finding& f : violations) {
    std::fprintf(stderr, "%s\n", totoro::lint::FormatFinding(f).c_str());
    ++errors;
  }
  for (const AllowEntry& e : entries) {
    if (!e.used) {
      std::fprintf(stderr,
                   "allow.txt:%d: unused entry (%s %s %s) — the finding is fixed; "
                   "delete the entry and lower the budget\n",
                   e.line, e.rule.c_str(), e.file.c_str(), e.symbol.c_str());
      ++errors;
    }
  }

  if (!budget_path.empty()) {
    std::string text;
    if (!ReadFile(budget_path, &text)) {
      std::fprintf(stderr, "totoro_lint: cannot read budget %s\n", budget_path.c_str());
      return 2;
    }
    const long budget = std::strtol(text.c_str(), nullptr, 10);
    if (static_cast<long>(entries.size()) > budget) {
      std::fprintf(stderr,
                   "allowlist grew: %zu entries > budget %ld (%s). The allowlist must "
                   "shrink, not grow — fix the new finding instead.\n",
                   entries.size(), budget, budget_path.c_str());
      ++errors;
    }
  }

  if (errors > 0) {
    std::fprintf(stderr, "totoro_lint: %d problem(s), %zu finding(s) allowlisted\n",
                 errors, findings.size() - violations.size());
    return 1;
  }
  std::printf("totoro_lint: clean (%zu files, %zu allowlisted finding(s))\n",
              files.size(), findings.size());
  return 0;
}
