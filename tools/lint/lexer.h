// Minimal C++ lexer for totoro_lint.
//
// This is deliberately not a full C++ front end: the lint rules (see rules.h) only
// need identifiers, string literals, punctuation, and line numbers, plus the special
// `// LINT: <tag>` escape-hatch comments. Preprocessor lines are tokenized like
// ordinary code except that `#include "..."` targets are collected separately so the
// rule engine can resolve project-local includes (member containers declared in a
// header, iterated in the .cc).
#ifndef TOOLS_LINT_LEXER_H_
#define TOOLS_LINT_LEXER_H_

#include <map>
#include <string>
#include <vector>

namespace totoro::lint {

enum class TokenKind {
  kIdentifier,  // foo, unordered_map, LINT keywords
  kNumber,      // 123, 0xff, 1.5e3
  kString,      // "..." (text holds the unescaped-ish raw contents, quotes stripped)
  kChar,        // '...'
  kPunct,       // one of: multi-char ::, ->, <=, >=, ==, !=, or a single char
};

struct Token {
  TokenKind kind;
  std::string text;
  int line = 0;  // 1-based.
};

struct LexedFile {
  std::vector<Token> tokens;
  // Lines carrying a `// LINT: <tag>` comment, mapped to the tag text (trimmed).
  std::map<int, std::string> annotations;
  // Targets of `#include "..."` directives, in order of appearance.
  std::vector<std::string> quoted_includes;
};

// Tokenizes `source`. Never fails: unrecognized bytes become single-char punct tokens.
LexedFile Lex(const std::string& source);

}  // namespace totoro::lint

#endif  // TOOLS_LINT_LEXER_H_
