// benchdiff core: parse BENCH_*.json reports and compare current against baseline.
//
// Comparison semantics (one Metric at a time, driven by the BASELINE file so a
// baseline is the contract):
//   - fingerprints   always compare exactly; any mismatch or absence is a failure
//                    (a changed fingerprint means the run is no longer bit-identical).
//   - tolerance == 0 deterministic metric (virtual-time result, count): values must
//                    compare exactly; any difference is a failure.
//   - tolerance > 0  wall-clock metric: only regressions matter. Units containing
//                    "/s" count higher-is-better (rates), everything else
//                    lower-is-better (latencies). Both are measured as an equivalent
//                    slowdown — current/base - 1 for latencies, base/current - 1 for
//                    rates — so a halved rate and a doubled latency both read 100%.
//                    Regressions above the metric's own tolerance warn; above
//                    max(tolerance, DiffOptions::fail_above) they fail. Improvements
//                    never fail.
//   - meta "workload" differing between baseline and current skips the whole report
//    (with a note) — a dev run with different bench arguments is not a regression.
//
// The library exists separately from main.cc so tests/bench_report_test.cc can drive
// pass/fail/threshold cases directly.
#ifndef TOOLS_BENCHDIFF_DIFF_H_
#define TOOLS_BENCHDIFF_DIFF_H_

#include <map>
#include <string>
#include <vector>

namespace totoro::benchdiff {

struct ReportMetric {
  double value = 0.0;
  std::string unit;
  double tolerance = 0.0;
};

// One parsed BENCH_<name>.json.
struct Report {
  std::string name;
  std::map<std::string, std::string> meta;
  std::map<std::string, ReportMetric> metrics;
  std::map<std::string, std::string> fingerprints;  // 16-hex-char strings.
};

// Parses a BENCH report. Returns false (with a reason) on malformed JSON or a
// missing/unsupported schema version.
bool ParseReport(const std::string& json_text, Report* out, std::string* error);

enum class Severity { kNote, kWarn, kFail };

struct Issue {
  Severity severity = Severity::kNote;
  std::string report;  // Bench name the issue belongs to.
  std::string what;    // Human-readable description.
};

struct DiffOptions {
  // Relative regression above which a tolerance>0 metric fails even if its own
  // tolerance is smaller. CI's "warn-then-fail above 25%".
  double fail_above = 0.25;
};

// Compares `current` against `baseline`, appending issues. Returns the worst
// severity produced (kNote when the reports agree).
Severity DiffReports(const Report& baseline, const Report& current,
                     const DiffOptions& options, std::vector<Issue>* issues);

// "note" / "warn" / "FAIL".
const char* SeverityLabel(Severity severity);

}  // namespace totoro::benchdiff

#endif  // TOOLS_BENCHDIFF_DIFF_H_
