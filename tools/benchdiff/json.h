// Minimal JSON reader for benchdiff.
//
// Parses the subset of JSON that BENCH_*.json files use (objects, arrays, strings,
// numbers, booleans, null) into a tree of JsonValue nodes. Object member order is
// preserved so diagnostics can echo the file's own ordering. No dependencies beyond
// the standard library; parse errors carry a byte offset and a short reason.
#ifndef TOOLS_BENCHDIFF_JSON_H_
#define TOOLS_BENCHDIFF_JSON_H_

#include <string>
#include <utility>
#include <vector>

namespace totoro::benchdiff {

class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool bool_value = false;
  double number_value = 0.0;
  std::string string_value;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;  // Preserves file order.

  bool is_object() const { return kind == Kind::kObject; }
  bool is_string() const { return kind == Kind::kString; }
  bool is_number() const { return kind == Kind::kNumber; }

  // Object member lookup; nullptr when absent or not an object.
  const JsonValue* Find(const std::string& key) const;
};

// Parses `text` into `out`. On failure returns false and describes the problem
// ("offset 17: expected ':'") in `error`. Trailing garbage after the top-level
// value is an error.
bool ParseJson(const std::string& text, JsonValue* out, std::string* error);

}  // namespace totoro::benchdiff

#endif  // TOOLS_BENCHDIFF_JSON_H_
