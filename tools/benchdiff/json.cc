#include "tools/benchdiff/json.h"

#include <cctype>
#include <cstdlib>

namespace totoro::benchdiff {

namespace {

class Parser {
 public:
  Parser(const std::string& text, std::string* error) : text_(text), error_(error) {}

  bool Parse(JsonValue* out) {
    SkipWhitespace();
    if (!ParseValue(out)) {
      return false;
    }
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Fail("trailing garbage after top-level value");
    }
    return true;
  }

 private:
  bool Fail(const std::string& reason) {
    *error_ = "offset " + std::to_string(pos_) + ": " + reason;
    return false;
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() && (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                                   text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeLiteral(const char* literal) {
    const size_t len = std::string(literal).size();
    if (text_.compare(pos_, len, literal) == 0) {
      pos_ += len;
      return true;
    }
    return false;
  }

  bool ParseValue(JsonValue* out) {
    if (pos_ >= text_.size()) {
      return Fail("unexpected end of input");
    }
    const char c = text_[pos_];
    switch (c) {
      case '{':
        return ParseObject(out);
      case '[':
        return ParseArray(out);
      case '"':
        out->kind = JsonValue::Kind::kString;
        return ParseString(&out->string_value);
      case 't':
        out->kind = JsonValue::Kind::kBool;
        out->bool_value = true;
        return ConsumeLiteral("true") || Fail("bad literal");
      case 'f':
        out->kind = JsonValue::Kind::kBool;
        out->bool_value = false;
        return ConsumeLiteral("false") || Fail("bad literal");
      case 'n':
        out->kind = JsonValue::Kind::kNull;
        return ConsumeLiteral("null") || Fail("bad literal");
      default:
        return ParseNumber(out);
    }
  }

  bool ParseObject(JsonValue* out) {
    out->kind = JsonValue::Kind::kObject;
    ++pos_;  // '{'
    SkipWhitespace();
    if (Consume('}')) {
      return true;
    }
    while (true) {
      SkipWhitespace();
      std::string key;
      if (pos_ >= text_.size() || text_[pos_] != '"' || !ParseString(&key)) {
        return Fail("expected object key string");
      }
      SkipWhitespace();
      if (!Consume(':')) {
        return Fail("expected ':'");
      }
      SkipWhitespace();
      JsonValue value;
      if (!ParseValue(&value)) {
        return false;
      }
      out->object.emplace_back(std::move(key), std::move(value));
      SkipWhitespace();
      if (Consume('}')) {
        return true;
      }
      if (!Consume(',')) {
        return Fail("expected ',' or '}'");
      }
    }
  }

  bool ParseArray(JsonValue* out) {
    out->kind = JsonValue::Kind::kArray;
    ++pos_;  // '['
    SkipWhitespace();
    if (Consume(']')) {
      return true;
    }
    while (true) {
      SkipWhitespace();
      JsonValue value;
      if (!ParseValue(&value)) {
        return false;
      }
      out->array.push_back(std::move(value));
      SkipWhitespace();
      if (Consume(']')) {
        return true;
      }
      if (!Consume(',')) {
        return Fail("expected ',' or ']'");
      }
    }
  }

  bool ParseString(std::string* out) {
    ++pos_;  // '"'
    out->clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') {
        return true;
      }
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) {
        break;
      }
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) {
            return Fail("truncated \\u escape");
          }
          const unsigned long code =
              std::strtoul(text_.substr(pos_, 4).c_str(), nullptr, 16);
          pos_ += 4;
          // BENCH files only escape control characters; encode as UTF-8 up to 0x7FF.
          if (code < 0x80) {
            out->push_back(static_cast<char>(code));
          } else {
            out->push_back(static_cast<char>(0xC0 | (code >> 6)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          return Fail("unknown escape");
      }
    }
    return Fail("unterminated string");
  }

  bool ParseNumber(JsonValue* out) {
    const size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) {
      return Fail("expected a value");
    }
    char* end = nullptr;
    const std::string token = text_.substr(start, pos_ - start);
    out->number_value = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') {
      return Fail("bad number '" + token + "'");
    }
    out->kind = JsonValue::Kind::kNumber;
    return true;
  }

  const std::string& text_;
  std::string* error_;
  size_t pos_ = 0;
};

}  // namespace

const JsonValue* JsonValue::Find(const std::string& key) const {
  if (kind != Kind::kObject) {
    return nullptr;
  }
  for (const auto& [k, v] : object) {
    if (k == key) {
      return &v;
    }
  }
  return nullptr;
}

bool ParseJson(const std::string& text, JsonValue* out, std::string* error) {
  std::string local_error;
  Parser parser(text, error != nullptr ? error : &local_error);
  return parser.Parse(out);
}

}  // namespace totoro::benchdiff
