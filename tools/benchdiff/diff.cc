#include "tools/benchdiff/diff.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "tools/benchdiff/json.h"

namespace totoro::benchdiff {

namespace {

std::string FormatDouble(double v) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.6g", v);
  return buffer;
}

bool HigherIsBetter(const std::string& unit) {
  return unit.find("/s") != std::string::npos;
}

void Add(std::vector<Issue>* issues, Severity* worst, Severity severity,
         const std::string& report, std::string what) {
  Issue issue;
  issue.severity = severity;
  issue.report = report;
  issue.what = std::move(what);
  issues->push_back(std::move(issue));
  if (static_cast<int>(severity) > static_cast<int>(*worst)) {
    *worst = severity;
  }
}

}  // namespace

const char* SeverityLabel(Severity severity) {
  switch (severity) {
    case Severity::kNote:
      return "note";
    case Severity::kWarn:
      return "warn";
    case Severity::kFail:
      return "FAIL";
  }
  return "?";
}

bool ParseReport(const std::string& json_text, Report* out, std::string* error) {
  JsonValue root;
  if (!ParseJson(json_text, &root, error)) {
    return false;
  }
  if (!root.is_object()) {
    *error = "top-level value is not an object";
    return false;
  }
  const JsonValue* schema = root.Find("schema");
  if (schema == nullptr || !schema->is_number() || schema->number_value != 1.0) {
    *error = "missing or unsupported schema version (want 1)";
    return false;
  }
  const JsonValue* name = root.Find("name");
  if (name == nullptr || !name->is_string() || name->string_value.empty()) {
    *error = "missing report name";
    return false;
  }
  out->name = name->string_value;
  if (const JsonValue* meta = root.Find("meta"); meta != nullptr && meta->is_object()) {
    for (const auto& [key, value] : meta->object) {
      if (!value.is_string()) {
        *error = "meta value for '" + key + "' is not a string";
        return false;
      }
      out->meta[key] = value.string_value;
    }
  }
  if (const JsonValue* metrics = root.Find("metrics");
      metrics != nullptr && metrics->is_object()) {
    for (const auto& [key, value] : metrics->object) {
      const JsonValue* v = value.Find("value");
      if (v == nullptr || !v->is_number()) {
        *error = "metric '" + key + "' has no numeric value";
        return false;
      }
      ReportMetric m;
      m.value = v->number_value;
      if (const JsonValue* unit = value.Find("unit"); unit != nullptr && unit->is_string()) {
        m.unit = unit->string_value;
      }
      if (const JsonValue* tol = value.Find("tolerance");
          tol != nullptr && tol->is_number()) {
        m.tolerance = tol->number_value;
      }
      out->metrics[key] = std::move(m);
    }
  }
  if (const JsonValue* fps = root.Find("fingerprints");
      fps != nullptr && fps->is_object()) {
    for (const auto& [key, value] : fps->object) {
      if (!value.is_string()) {
        *error = "fingerprint '" + key + "' is not a string";
        return false;
      }
      out->fingerprints[key] = value.string_value;
    }
  }
  return true;
}

Severity DiffReports(const Report& baseline, const Report& current,
                     const DiffOptions& options, std::vector<Issue>* issues) {
  Severity worst = Severity::kNote;
  const std::string& name = baseline.name;
  if (current.name != baseline.name) {
    Add(issues, &worst, Severity::kFail, name,
        "report name mismatch: baseline '" + baseline.name + "' vs current '" +
            current.name + "'");
    return worst;
  }

  // Different workload (bench arguments) — nothing comparable; skip with a note.
  const auto base_workload = baseline.meta.find("workload");
  const auto cur_workload = current.meta.find("workload");
  const std::string base_wl =
      base_workload == baseline.meta.end() ? "" : base_workload->second;
  const std::string cur_wl = cur_workload == current.meta.end() ? "" : cur_workload->second;
  if (base_wl != cur_wl) {
    Add(issues, &worst, Severity::kNote, name,
        "workload differs ('" + base_wl + "' vs '" + cur_wl +
            "'); skipping comparison");
    return worst;
  }

  for (const auto& [fp_name, base_fp] : baseline.fingerprints) {
    const auto it = current.fingerprints.find(fp_name);
    if (it == current.fingerprints.end()) {
      Add(issues, &worst, Severity::kFail, name,
          "fingerprint '" + fp_name + "' missing from current run");
      continue;
    }
    if (it->second != base_fp) {
      Add(issues, &worst, Severity::kFail, name,
          "fingerprint '" + fp_name + "' changed: " + base_fp + " -> " + it->second +
              " (run is no longer bit-identical to the baseline)");
    }
  }
  for (const auto& [fp_name, fp] : current.fingerprints) {
    (void)fp;
    if (baseline.fingerprints.find(fp_name) == baseline.fingerprints.end()) {
      Add(issues, &worst, Severity::kNote, name,
          "new fingerprint '" + fp_name + "' (not in baseline)");
    }
  }

  for (const auto& [metric_name, base] : baseline.metrics) {
    const auto it = current.metrics.find(metric_name);
    if (it == current.metrics.end()) {
      Add(issues, &worst, Severity::kFail, name,
          "metric '" + metric_name + "' missing from current run");
      continue;
    }
    const ReportMetric& cur = it->second;
    if (base.tolerance <= 0.0) {
      if (cur.value != base.value) {
        Add(issues, &worst, Severity::kFail, name,
            "deterministic metric '" + metric_name + "' changed: " +
                FormatDouble(base.value) + " -> " + FormatDouble(cur.value));
      }
      continue;
    }
    if (base.value == 0.0) {
      Add(issues, &worst, Severity::kNote, name,
          "metric '" + metric_name + "' has zero baseline; skipping");
      continue;
    }
    // Rates ("/s" units) measure regression as the equivalent slowdown
    // (base/current - 1), so halving a rate reads as a 100% regression — the same
    // number a doubled latency produces. Rate-domain (1 - current/base) would
    // saturate at 100% and let any slowdown pass a tolerance of 1.
    double rel;
    if (HigherIsBetter(base.unit)) {
      if (cur.value <= 0.0) {
        Add(issues, &worst, Severity::kFail, name,
            "metric '" + metric_name + "' collapsed to " + FormatDouble(cur.value) +
                " " + base.unit + " (baseline " + FormatDouble(base.value) + ")");
        continue;
      }
      rel = base.value / cur.value - 1.0;
    } else {
      rel = (cur.value - base.value) / std::fabs(base.value);
    }
    if (rel <= base.tolerance) {
      continue;  // Within budget (improvements land here too).
    }
    const double fail_at = std::max(base.tolerance, options.fail_above);
    const std::string detail =
        "metric '" + metric_name + "' regressed " +
        FormatDouble(rel * 100.0) + "% (" + FormatDouble(base.value) + " -> " +
        FormatDouble(cur.value) + " " + base.unit + ", tolerance " +
        FormatDouble(base.tolerance * 100.0) + "%)";
    Add(issues, &worst, rel > fail_at ? Severity::kFail : Severity::kWarn, name, detail);
  }
  for (const auto& [metric_name, metric] : current.metrics) {
    (void)metric;
    if (baseline.metrics.find(metric_name) == baseline.metrics.end()) {
      Add(issues, &worst, Severity::kNote, name,
          "new metric '" + metric_name + "' (not in baseline)");
    }
  }
  return worst;
}

}  // namespace totoro::benchdiff
