// benchdiff: compare a fresh set of BENCH_*.json bench reports against a committed
// baseline and fail on regressions.
//
// Usage:
//   benchdiff --baseline <dir> --current <dir> [--fail-above <rel>]
//   benchdiff --baseline <dir> --current <dir> --update-baselines
//
// The BASELINE directory drives the comparison: every BENCH_*.json in it must have a
// counterpart in the current directory. Per-metric semantics live in diff.h; in short,
// fingerprints and tolerance-0 metrics compare exactly (hard fail on any drift), and
// wall-clock metrics warn beyond their own tolerance and fail beyond
// max(tolerance, --fail-above) (default 0.25).
//
// --update-baselines inverts the flow: every BENCH_*.json in the CURRENT directory is
// copied over the baseline directory (validated as a parseable report first), so an
// intentional perf change refreshes the committed baselines in one step.
//
// Exit codes: 0 clean (notes/warnings allowed), 1 regression detected, 2 usage/IO
// error.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "tools/benchdiff/diff.h"

namespace fs = std::filesystem;
using totoro::benchdiff::DiffOptions;
using totoro::benchdiff::Issue;
using totoro::benchdiff::Report;
using totoro::benchdiff::Severity;

namespace {

bool ReadFile(const fs::path& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return false;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  *out = buf.str();
  return true;
}

bool LoadReport(const fs::path& path, Report* out) {
  std::string text;
  if (!ReadFile(path, &text)) {
    std::fprintf(stderr, "benchdiff: cannot read %s\n", path.string().c_str());
    return false;
  }
  std::string error;
  if (!totoro::benchdiff::ParseReport(text, out, &error)) {
    std::fprintf(stderr, "benchdiff: %s: %s\n", path.string().c_str(), error.c_str());
    return false;
  }
  return true;
}

bool IsBenchReportFile(const fs::path& path) {
  const std::string filename = path.filename().string();
  return filename.rfind("BENCH_", 0) == 0 && path.extension() == ".json";
}

}  // namespace

// Copies every parseable BENCH_*.json from `current_dir` over `baseline_dir`,
// creating the baseline directory if needed. Returns the process exit code.
int UpdateBaselines(const std::string& baseline_dir, const std::string& current_dir) {
  if (!fs::is_directory(current_dir)) {
    std::fprintf(stderr, "benchdiff: current dir %s not found\n", current_dir.c_str());
    return 2;
  }
  std::vector<fs::path> current_files;
  for (const auto& entry : fs::directory_iterator(current_dir)) {
    if (entry.is_regular_file() && IsBenchReportFile(entry.path())) {
      current_files.push_back(entry.path());
    }
  }
  std::sort(current_files.begin(), current_files.end());
  if (current_files.empty()) {
    std::fprintf(stderr, "benchdiff: no BENCH_*.json in %s\n", current_dir.c_str());
    return 2;
  }
  std::error_code ec;
  fs::create_directories(baseline_dir, ec);
  if (ec) {
    std::fprintf(stderr, "benchdiff: cannot create %s: %s\n", baseline_dir.c_str(),
                 ec.message().c_str());
    return 2;
  }
  for (const fs::path& path : current_files) {
    Report report;
    if (!LoadReport(path, &report)) {
      return 2;  // Refuse to commit an unparseable report as a baseline.
    }
    const fs::path dst = fs::path(baseline_dir) / path.filename();
    fs::copy_file(path, dst, fs::copy_options::overwrite_existing, ec);
    if (ec) {
      std::fprintf(stderr, "benchdiff: copy %s failed: %s\n", path.string().c_str(),
                   ec.message().c_str());
      return 2;
    }
    std::printf("benchdiff: baseline %s updated\n", dst.filename().string().c_str());
  }
  std::printf("benchdiff: %zu baseline(s) refreshed in %s\n", current_files.size(),
              baseline_dir.c_str());
  return 0;
}

int main(int argc, char** argv) {
  std::string baseline_dir;
  std::string current_dir;
  bool update_baselines = false;
  DiffOptions options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "benchdiff: %s requires an argument\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--baseline") {
      baseline_dir = next("--baseline");
    } else if (arg == "--current") {
      current_dir = next("--current");
    } else if (arg == "--fail-above") {
      options.fail_above = std::strtod(next("--fail-above"), nullptr);
    } else if (arg == "--update-baselines") {
      update_baselines = true;
    } else if (arg == "--help") {
      std::printf(
          "usage: benchdiff --baseline <dir> --current <dir>"
          " [--fail-above <rel>] [--update-baselines]\n");
      return 0;
    } else {
      std::fprintf(stderr, "benchdiff: unknown argument '%s'\n", arg.c_str());
      return 2;
    }
  }
  if (baseline_dir.empty() || current_dir.empty()) {
    std::fprintf(stderr, "benchdiff: --baseline and --current are required\n");
    return 2;
  }
  if (update_baselines) {
    return UpdateBaselines(baseline_dir, current_dir);
  }
  if (!fs::is_directory(baseline_dir)) {
    std::fprintf(stderr, "benchdiff: baseline dir %s not found\n", baseline_dir.c_str());
    return 2;
  }

  std::vector<fs::path> baseline_files;
  for (const auto& entry : fs::directory_iterator(baseline_dir)) {
    if (entry.is_regular_file() && IsBenchReportFile(entry.path())) {
      baseline_files.push_back(entry.path());
    }
  }
  std::sort(baseline_files.begin(), baseline_files.end());
  if (baseline_files.empty()) {
    std::fprintf(stderr, "benchdiff: no BENCH_*.json in %s\n", baseline_dir.c_str());
    return 2;
  }

  std::vector<Issue> issues;
  Severity worst = Severity::kNote;
  size_t compared = 0;
  for (const fs::path& baseline_path : baseline_files) {
    Report baseline;
    if (!LoadReport(baseline_path, &baseline)) {
      return 2;
    }
    const fs::path current_path = fs::path(current_dir) / baseline_path.filename();
    if (!fs::exists(current_path)) {
      Issue issue;
      issue.severity = Severity::kFail;
      issue.report = baseline.name;
      issue.what = "current run produced no " + baseline_path.filename().string();
      issues.push_back(std::move(issue));
      worst = Severity::kFail;
      continue;
    }
    Report current;
    if (!LoadReport(current_path, &current)) {
      return 2;
    }
    const Severity s = totoro::benchdiff::DiffReports(baseline, current, options, &issues);
    if (static_cast<int>(s) > static_cast<int>(worst)) {
      worst = s;
    }
    ++compared;
  }

  for (const Issue& issue : issues) {
    std::fprintf(stderr, "[%s] %s: %s\n", totoro::benchdiff::SeverityLabel(issue.severity),
                 issue.report.c_str(), issue.what.c_str());
  }
  if (worst == Severity::kFail) {
    std::fprintf(stderr, "benchdiff: REGRESSION (%zu report(s) compared)\n", compared);
    return 1;
  }
  std::printf("benchdiff: ok (%zu report(s) compared, %zu issue(s))\n", compared,
              issues.size());
  return 0;
}
