// Reproduces Figure 12: failure recovery time for an exponentially increasing number of
// dataflow trees, with 5% of each tree's nodes failing simultaneously.
//
// Recovery is fully decentralized — children detect dead parents via missed keep-alives
// and re-JOIN toward the topic — so many trees repair in parallel and recovery time
// stays roughly flat as the tree count doubles (the paper's claim).
#include "bench/bench_util.h"

namespace totoro {
namespace {

double MeasureRecovery(int num_trees, uint64_t seed) {
  ScribeConfig scribe_config;
  scribe_config.enable_tree_repair = true;
  scribe_config.parent_heartbeat_ms = 100.0;
  scribe_config.parent_timeout_ms = 350.0;
  bench::Stack stack(400, seed, PastryConfig{}, scribe_config, /*model_bandwidth=*/false);
  Rng pick(seed + 1);
  std::vector<NodeId> topics;
  for (int t = 0; t < num_trees; ++t) {
    const NodeId topic = stack.forest->CreateTopic("fig12-" + std::to_string(t));
    stack.forest->SubscribeAll(topic, stack.RandomNodes(60, pick));
    topics.push_back(topic);
  }
  stack.forest->StartMaintenance();
  stack.sim.RunFor(500.0);  // Let parent pointers and heartbeats settle.
  for (const auto& topic : topics) {
    CHECK(stack.forest->IsFullyConnected(topic));
  }

  // Fail 5% of the overlay (hits ~5% of each tree's membership).
  const size_t to_fail = stack.pastry->size() / 20;
  Rng fail_rng(seed + 2);
  stack.pastry->FailRandomNodes(to_fail, fail_rng);

  const double failure_time = stack.sim.Now();
  const double step = scribe_config.parent_heartbeat_ms;
  for (int i = 0; i < 600; ++i) {
    stack.sim.RunFor(step);
    bool all_connected = true;
    for (const auto& topic : topics) {
      if (!stack.forest->IsFullyConnected(topic)) {
        all_connected = false;
        break;
      }
    }
    if (all_connected) {
      return stack.sim.Now() - failure_time;
    }
  }
  return -1.0;  // Did not recover within the horizon.
}

}  // namespace
}  // namespace totoro

int main() {
  using totoro::AsciiTable;
  totoro::bench::PrintHeader(
      "Fig 12: recovery time after 5% simultaneous node failures, vs #trees");
  AsciiTable table({"#trees", "recovery time (ms)"});
  for (int trees : {2, 4, 8, 16, 32, 64}) {
    const double recovery = totoro::MeasureRecovery(trees, 1200 + trees);
    table.AddRow({AsciiTable::Int(trees),
                  recovery < 0 ? "did not converge" : AsciiTable::Num(recovery, 0)});
  }
  std::printf("%s", table.Render().c_str());
  std::printf("paper shape: recovery time stays stable as tree count doubles (parallel,\n"
              "coordinator-free repair)\n");
  return 0;
}
