// Reproduces Figure 12: failure recovery time for an exponentially increasing number of
// dataflow trees, with 5% of each tree's nodes failing simultaneously.
//
// Recovery is fully decentralized — children detect dead parents via missed keep-alives
// and re-JOIN toward the topic — so many trees repair in parallel and recovery time
// stays roughly flat as the tree count doubles (the paper's claim).
#include "bench/bench_util.h"
#include "src/faultsim/fault_injector.h"
#include "src/obs/export.h"
#include "src/faultsim/fault_script.h"
#include "src/faultsim/invariant_checker.h"
#include "src/faultsim/recovery.h"

namespace totoro {
namespace {

double MeasureTreeRecovery(int num_trees, uint64_t seed) {
  ScribeConfig scribe_config;
  scribe_config.enable_tree_repair = true;
  scribe_config.parent_heartbeat_ms = 100.0;
  scribe_config.parent_timeout_ms = 350.0;
  bench::Stack stack(400, seed, PastryConfig{}, scribe_config, /*model_bandwidth=*/false);
  Rng pick(seed + 1);
  std::vector<NodeId> topics;
  for (int t = 0; t < num_trees; ++t) {
    const NodeId topic = stack.forest->CreateTopic("fig12-" + std::to_string(t));
    stack.forest->SubscribeAll(topic, stack.RandomNodes(60, pick));
    topics.push_back(topic);
  }
  stack.forest->StartMaintenance();
  stack.sim.RunFor(500.0);  // Let parent pointers and heartbeats settle.
  for (const auto& topic : topics) {
    CHECK(stack.forest->IsFullyConnected(topic));
  }

  // Fail 5% of the overlay (hits ~5% of each tree's membership).
  const size_t to_fail = stack.pastry->size() / 20;
  Rng fail_rng(seed + 2);
  stack.pastry->FailRandomNodes(to_fail, fail_rng);

  const double failure_time = stack.sim.Now();
  const double step = scribe_config.parent_heartbeat_ms;
  for (int i = 0; i < 600; ++i) {
    stack.sim.RunFor(step);
    bool all_connected = true;
    for (const auto& topic : topics) {
      if (!stack.forest->IsFullyConnected(topic)) {
        all_connected = false;
        break;
      }
    }
    if (all_connected) {
      return stack.sim.Now() - failure_time;
    }
  }
  return -1.0;  // Did not recover within the horizon.
}

// Scripted-partition companion: cut the overlay in half for `partition_ms`, heal, and
// measure the time until the tree's first post-heal publish reaches every subscriber
// (the faultsim recovery probe), with the invariant checker attached throughout.
struct PartitionHealRow {
  double recovery_ms = -1.0;
  uint64_t partition_drops = 0;
  size_t violations = 0;
};

PartitionHealRow MeasurePartitionHealRecovery(double partition_ms, uint64_t seed) {
  PastryConfig pastry_config;
  pastry_config.enable_keepalive = true;
  pastry_config.keepalive_interval_ms = 200.0;
  pastry_config.keepalive_timeout_ms = 700.0;
  ScribeConfig scribe_config;
  scribe_config.enable_tree_repair = true;
  scribe_config.parent_heartbeat_ms = 100.0;
  scribe_config.parent_timeout_ms = 350.0;
  scribe_config.join_retry_ms = 400.0;
  bench::Stack stack(200, seed, pastry_config, scribe_config, /*model_bandwidth=*/false);
  for (size_t i = 0; i < stack.pastry->size(); ++i) {
    stack.pastry->node(i).StartKeepAlive();
  }
  const NodeId topic = stack.forest->CreateTopic("fig12-partition");
  stack.forest->SubscribeAll(topic, stack.AllNodes(), /*settle_ms=*/1500.0);
  stack.forest->StartMaintenance();

  FaultInjector injector(stack.pastry.get(), stack.forest.get(), seed + 3);
  InvariantCheckerConfig checker_config;
  checker_config.convergence_grace_ms = 9000.0;
  InvariantChecker checker(stack.pastry.get(), stack.forest.get(), checker_config);
  checker.WatchTopic(topic);
  checker.SetFaultInjector(&injector);
  checker.Start();

  std::vector<HostId> group_a;
  std::vector<HostId> group_b;
  for (size_t i = 0; i < stack.pastry->size(); ++i) {
    (i < stack.pastry->size() / 2 ? group_a : group_b)
        .push_back(stack.pastry->node(i).host());
  }
  FaultScript script;
  script.PartitionAt(1000.0, group_a, group_b).HealAt(1000.0 + partition_ms);
  injector.Schedule(script);
  stack.sim.RunFor(1000.0 + partition_ms);

  PartitionHealRow row;
  row.recovery_ms = MeasureRecovery(stack.forest.get(), topic);
  stack.sim.RunFor(12000.0);  // Convergence tail, then verify the run was clean.
  checker.CheckConverged();
  checker.Stop();
  row.partition_drops = injector.stats().partition_drops;
  row.violations = checker.violations().size();
  return row;
}

}  // namespace
}  // namespace totoro

int main() {
  using totoro::AsciiTable;
  totoro::BenchReport report = totoro::bench::MakeReport("fig12_recovery", 1200, "default");
  totoro::bench::PrintHeader(
      "Fig 12: recovery time after 5% simultaneous node failures, vs #trees");
  AsciiTable table({"#trees", "recovery time (ms)"});
  for (int trees : {2, 4, 8, 16, 32, 64}) {
    const double recovery = totoro::MeasureTreeRecovery(trees, 1200 + trees);
    table.AddRow({AsciiTable::Int(trees),
                  recovery < 0 ? "did not converge" : AsciiTable::Num(recovery, 0)});
    if (trees == 64) {
      report.SetMetric("fig12_recovery_ms_64trees", recovery, "ms", 0.0);
    }
  }
  const std::string rendered = table.Render();
  std::printf("%s", rendered.c_str());
  report.SetFingerprint("fig12_trees_table", totoro::FingerprintBytes(rendered));
  std::printf("paper shape: recovery time stays stable as tree count doubles (parallel,\n"
              "coordinator-free repair)\n");

  totoro::bench::PrintHeader(
      "Fig 12 companion: post-heal recovery after a scripted half/half partition");
  AsciiTable partition_table(
      {"partition (ms)", "recovery (ms)", "msgs cut", "invariant violations"});
  for (double partition_ms : {1000.0, 3000.0, 6000.0}) {
    const auto row = totoro::MeasurePartitionHealRecovery(
        partition_ms, 1300 + static_cast<uint64_t>(partition_ms));
    partition_table.AddRow({AsciiTable::Num(partition_ms, 0),
                            row.recovery_ms < 0 ? "did not converge"
                                                : AsciiTable::Num(row.recovery_ms, 0),
                            AsciiTable::Int(static_cast<long>(row.partition_drops)),
                            AsciiTable::Int(static_cast<long>(row.violations))});
  }
  const std::string rendered_partition = partition_table.Render();
  std::printf("%s", rendered_partition.c_str());
  report.SetFingerprint("fig12_partition_table",
                        totoro::FingerprintBytes(rendered_partition));
  std::printf("recovery = virtual time from heal until the first publish reaching every\n"
              "subscriber; violations = InvariantChecker findings over the whole run\n");
  return report.Write() ? 0 : 1;
}
