// Reproduces Figure 7: Totoro's communication cost vs number of dataflow trees.
//
// Measures per-node maintenance traffic (TCP and UDP) over a fixed window while k trees
// exist. New trees only add JOIN routing and per-tree keep-alives on top of the shared
// overlay maintenance, so traffic grows sub-linearly — the paper reports 1.19x (TCP) and
// 1.29x (UDP) when trees go 1 -> 10x. The hub-and-spoke baseline pays per-app
// per-client connection maintenance through one server, so its server-side traffic
// scales linearly with tree count.
#include "bench/bench_util.h"
#include "src/obs/export.h"
#include "src/obs/metrics_registry.h"
#include "src/pubsub/wire_batcher.h"

namespace totoro {
namespace {

struct TrafficResult {
  double tcp_bytes_per_node = 0.0;
  double udp_bytes_per_node = 0.0;
};

TrafficResult MeasureTotoro(int num_trees, double window_ms) {
  PastryConfig pastry_config;
  pastry_config.enable_keepalive = true;
  pastry_config.keepalive_interval_ms = 500.0;
  ScribeConfig scribe_config;
  scribe_config.enable_tree_repair = true;
  scribe_config.parent_heartbeat_ms = 500.0;
  bench::Stack stack(300, 70, pastry_config, scribe_config, /*model_bandwidth=*/false);
  for (size_t i = 0; i < stack.pastry->size(); ++i) {
    stack.pastry->node(i).StartKeepAlive();
  }
  stack.forest->StartMaintenance();
  // Warm up the overlay keep-alives, then measure a fixed-length window that contains
  // both tree creation (TCP JOINs) and steady-state maintenance (UDP keep-alives).
  stack.sim.RunFor(1000.0);
  stack.net->metrics().Reset();
  const double window_start = stack.sim.Now();
  Rng pick(71);
  for (int t = 0; t < num_trees; ++t) {
    const NodeId topic = stack.forest->CreateTopic("fig7-" + std::to_string(t));
    stack.forest->SubscribeAll(topic, stack.RandomNodes(40, pick), /*settle_ms=*/200.0);
  }
  stack.sim.RunUntil(window_start + window_ms);
  TrafficResult out;
  out.tcp_bytes_per_node = static_cast<double>(stack.net->metrics().TotalBytesTcp()) /
                           static_cast<double>(stack.pastry->size());
  out.udp_bytes_per_node = static_cast<double>(stack.net->metrics().TotalBytesUdp()) /
                           static_cast<double>(stack.pastry->size());
  return out;
}

// Hub-and-spoke baseline: every app keeps one control connection per participating
// client through the central server (keep-alive both ways each period).
double MeasureCentralServerBytes(int num_apps, double window_ms) {
  constexpr double kPeriodMs = 500.0;
  constexpr double kHeartbeatBytes = 48.0;
  constexpr int kClientsPerApp = 40;
  const double periods = window_ms / kPeriodMs;
  // Server sends + receives one heartbeat per client per app per period.
  return periods * kClientsPerApp * num_apps * kHeartbeatBytes * 2.0;
}

// --- Wire batching arm: bytes on the wire with and without envelope coalescing. ---
//
// Ten trees over the SAME 40 subscribers, so every (parent, child) pair carries one
// keep-alive per topic per tick over the same edge — the coalescable pattern. Both
// arms use the same per-message framing model (kAccountOnly vs kCoalesce with a zero
// window, see src/pubsub/wire_batcher.h), so the delta is purely envelope savings.

struct BatchArmResult {
  uint64_t wire_bytes = 0;    // Bytes in the steady-state measurement window.
  uint64_t bytes_saved = 0;   // pubsub.batch.bytes_saved over the window.
  uint64_t envelopes = 0;
};

uint64_t BatchCounterValue(const char* name) {
  const Counter* c = GlobalMetrics().FindCounter(name);
  return c == nullptr ? 0 : c->value();
}

BatchArmResult MeasureBatchingArm(WireBatchConfig::Mode mode, double window_ms) {
  ScribeConfig scribe_config;
  scribe_config.enable_tree_repair = true;
  scribe_config.parent_heartbeat_ms = 500.0;
  scribe_config.batch.mode = mode;
  scribe_config.batch.window_ms = 0.0;  // Same-tick sends coalesce; timings unchanged.
  bench::Stack stack(300, 72, PastryConfig{}, scribe_config, /*model_bandwidth=*/false);
  stack.forest->StartMaintenance();
  Rng pick(73);
  const auto members = stack.RandomNodes(40, pick);
  for (int t = 0; t < 10; ++t) {
    const NodeId topic = stack.forest->CreateTopic("fig7-batch-" + std::to_string(t));
    stack.forest->SubscribeAll(topic, members, /*settle_ms=*/200.0);
  }
  // Steady state: only maintenance keep-alives remain.
  stack.net->metrics().Reset();
  const uint64_t saved_before = BatchCounterValue("pubsub.batch.bytes_saved");
  const uint64_t envelopes_before = BatchCounterValue("pubsub.batch.envelopes");
  const double window_start = stack.sim.Now();
  stack.sim.RunUntil(window_start + window_ms);
  BatchArmResult out;
  out.wire_bytes = stack.net->metrics().total_bytes();
  out.bytes_saved = BatchCounterValue("pubsub.batch.bytes_saved") - saved_before;
  out.envelopes = BatchCounterValue("pubsub.batch.envelopes") - envelopes_before;
  return out;
}

}  // namespace
}  // namespace totoro

int main() {
  using totoro::AsciiTable;
  totoro::bench::PrintHeader("Fig 7: per-node maintenance traffic vs #dataflow trees");
  constexpr double kWindowMs = 10000.0;
  AsciiTable table({"#trees", "Totoro TCP B/node", "Totoro UDP B/node",
                    "central server B (hub-and-spoke)"});
  double tcp1 = 0.0;
  double udp1 = 0.0;
  double tcp10 = 0.0;
  double udp10 = 0.0;
  for (int trees : {1, 2, 5, 10}) {
    const auto result = totoro::MeasureTotoro(trees, kWindowMs);
    if (trees == 1) {
      tcp1 = result.tcp_bytes_per_node;
      udp1 = result.udp_bytes_per_node;
    }
    if (trees == 10) {
      tcp10 = result.tcp_bytes_per_node;
      udp10 = result.udp_bytes_per_node;
    }
    table.AddRow({AsciiTable::Int(trees), AsciiTable::Num(result.tcp_bytes_per_node, 0),
                  AsciiTable::Num(result.udp_bytes_per_node, 0),
                  AsciiTable::Num(totoro::MeasureCentralServerBytes(trees, kWindowMs), 0)});
  }
  const std::string rendered = table.Render();
  std::printf("%s", rendered.c_str());
  std::printf("10x trees => Totoro TCP x%.2f, UDP x%.2f (paper: 1.19x TCP, 1.29x UDP);\n"
              "hub-and-spoke server traffic scales 10x\n",
              tcp10 / tcp1, udp10 / udp1);
  constexpr double kBatchWindowMs = 10000.0;
  const auto unbatched =
      totoro::MeasureBatchingArm(totoro::WireBatchConfig::Mode::kAccountOnly, kBatchWindowMs);
  const auto batched =
      totoro::MeasureBatchingArm(totoro::WireBatchConfig::Mode::kCoalesce, kBatchWindowMs);
  const double drop_pct = 100.0 *
      static_cast<double>(unbatched.wire_bytes - batched.wire_bytes) /
      static_cast<double>(unbatched.wire_bytes);
  std::printf("\nwire batching, 10 trees x same 40 subscribers, steady-state %.0fs window:\n"
              "  unbatched (per-msg framing): %llu B\n"
              "  batched   (envelopes):       %llu B  (%llu envelopes, -%.1f%%)\n",
              kBatchWindowMs / 1000.0,
              static_cast<unsigned long long>(unbatched.wire_bytes),
              static_cast<unsigned long long>(batched.wire_bytes),
              static_cast<unsigned long long>(batched.envelopes), drop_pct);

  totoro::BenchReport report = totoro::bench::MakeReport("fig7_traffic", 70, "default");
  // Traffic is virtual-time-driven and deterministic; ratios compare exactly.
  report.SetMetric("fig7_tcp_growth_10x", tcp10 / tcp1, "ratio", 0.0);
  report.SetMetric("fig7_udp_growth_10x", udp10 / udp1, "ratio", 0.0);
  report.SetMetric("fig7_tcp_bytes_per_node_10trees", tcp10, "bytes", 0.0);
  report.SetMetric("fig7_batch_unbatched_bytes",
                   static_cast<double>(unbatched.wire_bytes), "bytes", 0.0);
  report.SetMetric("fig7_batch_batched_bytes",
                   static_cast<double>(batched.wire_bytes), "bytes", 0.0);
  report.SetMetric("fig7_batch_bytes_drop_pct", drop_pct, "pct", 0.0);
  report.SetFingerprint("fig7_table", totoro::FingerprintBytes(rendered));
  return report.Write() ? 0 : 1;
}
