// Google-benchmark micro benchmarks of the hot primitives: overlay routing decisions,
// SHA-1 id derivation, KL-UCB index computation, MLP training steps, FedAvg merging.
#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "src/bandit/kl_ucb.h"
#include "src/fl/aggregation.h"
#include "src/ml/serialize.h"

namespace totoro {
namespace {

void BM_Sha1AppId(benchmark::State& state) {
  int i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(MakeAppId("application-name", "creator-key",
                                       std::to_string(i++)));
  }
}
BENCHMARK(BM_Sha1AppId);

void BM_RoutingNextHop(benchmark::State& state) {
  static bench::Stack* stack = new bench::Stack(10000, 77, PastryConfig{}, ScribeConfig{},
                                                /*model_bandwidth=*/false);
  Rng rng(78);
  for (auto _ : state) {
    const NodeId key = RandomNodeId(rng);
    const size_t origin = rng.NextBelow(stack->pastry->size());
    benchmark::DoNotOptimize(stack->pastry->node(origin).ComputeNextHop(key));
  }
}
BENCHMARK(BM_RoutingNextHop);

void BM_FullRoute10k(benchmark::State& state) {
  static bench::Stack* stack = new bench::Stack(10000, 79, PastryConfig{}, ScribeConfig{},
                                                /*model_bandwidth=*/false);
  static bool wired = false;
  if (!wired) {
    for (size_t i = 0; i < stack->pastry->size(); ++i) {
      stack->pastry->node(i).SetDeliverHandler(950,
                                               [](const NodeId&, const Message&, int) {});
    }
    wired = true;
  }
  Rng rng(80);
  for (auto _ : state) {
    Message m;
    m.type = 950;
    stack->pastry->node(rng.NextBelow(stack->pastry->size()))
        .Route(RandomNodeId(rng), std::move(m));
    stack->sim.Run();
  }
}
BENCHMARK(BM_FullRoute10k);

void BM_KlUcbIndex(benchmark::State& state) {
  double theta = 0.0;
  for (auto _ : state) {
    theta = theta >= 0.97 ? 0.01 : theta + 0.013;
    benchmark::DoNotOptimize(KlUcbLinkCost(theta, 137, 5000.0));
  }
}
BENCHMARK(BM_KlUcbIndex);

void BM_MlpTrainStep(benchmark::State& state) {
  SyntheticTask task(SyntheticTask::SpeechCommandsLike(1));
  Rng rng(2);
  Dataset shard = task.Generate(200, rng);
  auto model = MakeResNet34Proxy(64, 35, 3);
  TrainConfig config;
  config.local_steps = 1;
  config.batch_size = 20;
  Rng train_rng(4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model->TrainLocal(shard, config, train_rng));
  }
  state.SetItemsProcessed(state.iterations() * config.batch_size);
}
BENCHMARK(BM_MlpTrainStep);

void BM_FedAvgMerge(benchmark::State& state) {
  const size_t dim = 25000;
  std::vector<WeightedUpdate> updates(16);
  Rng rng(5);
  for (auto& u : updates) {
    u.weights.resize(dim);
    for (auto& w : u.weights) {
      w = static_cast<float>(rng.Gaussian());
    }
    u.sample_weight = 1.0 + rng.NextDouble();
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(FederatedAverage(updates));
  }
}
BENCHMARK(BM_FedAvgMerge);

void BM_SerializeInt8(benchmark::State& state) {
  std::vector<float> weights(25000);
  Rng rng(6);
  for (auto& w : weights) {
    w = static_cast<float>(rng.Gaussian());
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(EncodeInt8(weights));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(weights.size() * 4));
}
BENCHMARK(BM_SerializeInt8);

}  // namespace
}  // namespace totoro

BENCHMARK_MAIN();
