// Google-benchmark micro benchmarks of the hot primitives: simulator event-queue
// operations, overlay routing decisions, SHA-1 id derivation, KL-UCB index computation,
// MLP training steps, FedAvg merging.
#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "src/bandit/kl_ucb.h"
#include "src/fl/aggregation.h"
#include "src/ml/quantized.h"
#include "src/ml/serialize.h"
#include "src/sim/event_queue.h"

namespace totoro {
namespace {

// Schedule/fire churn at a fixed pending depth: the steady-state cost of one event
// through the slab + 4-ary heap, with captures representative of delivery closures.
void BM_Schedule(benchmark::State& state) {
  EventQueue q;
  q.Reserve(1024);
  SimTime t = 0.0;
  uint64_t sink = 0;
  // Keep 512 events pending so sift paths see a realistic tree depth.
  for (int i = 0; i < 512; ++i) {
    q.Push(t + static_cast<SimTime>(i % 97), [&sink]() { ++sink; });
  }
  SimTime at = 0.0;
  for (auto _ : state) {
    t += 1.0;
    char payload[48] = {};
    payload[0] = static_cast<char>(t);
    q.Push(t + static_cast<SimTime>(static_cast<int>(t) % 97),
           [&sink, payload]() { sink += 1 + 0 * static_cast<uint64_t>(payload[0]); });
    q.PopAndRun(&at);
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_Schedule);

// Schedule + cancel + skip: the timeout pattern (most timeouts are cancelled before
// firing). Measures handle resolution and lazy heap skipping.
void BM_CancelChurn(benchmark::State& state) {
  EventQueue q;
  q.Reserve(64);
  SimTime t = 0.0;
  uint64_t fired = 0;
  SimTime at = 0.0;
  for (auto _ : state) {
    t += 1.0;
    EventHandle timeout = q.Push(t + 100.0, [&fired]() { ++fired; });
    q.Push(t, [&fired]() { ++fired; });
    benchmark::DoNotOptimize(timeout.Cancel());
    q.PopAndRun(&at);  // Runs the live event; the dead one is skipped when surfaced.
  }
  benchmark::DoNotOptimize(fired);
}
BENCHMARK(BM_CancelChurn);

// Pop of a moved-out callback holding a move-only capture — regression guard for the
// move-not-copy PopNext contract (a copying queue would not compile this, and a
// shared_ptr workaround would show up as time here).
void BM_PopNextMove(benchmark::State& state) {
  EventQueue q;
  q.Reserve(16);
  SimTime at = 0.0;
  uint64_t sink = 0;
  auto buffer = std::make_unique<uint64_t[]>(8);
  for (auto _ : state) {
    q.Push(1.0, [&sink, p = buffer.get()]() { sink += p[0]; });
    EventFn fn;
    benchmark::DoNotOptimize(q.PopNext(&at, &fn));
    fn();
  }
  benchmark::DoNotOptimize(sink);
}
BENCHMARK(BM_PopNextMove);

// Run() on an empty queue: the idle-check fast path engines hit between rounds.
void BM_EmptyRun(benchmark::State& state) {
  Simulator sim;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim.Run());
  }
}
BENCHMARK(BM_EmptyRun);

void BM_Sha1AppId(benchmark::State& state) {
  int i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(MakeAppId("application-name", "creator-key",
                                       std::to_string(i++)));
  }
}
BENCHMARK(BM_Sha1AppId);

void BM_RoutingNextHop(benchmark::State& state) {
  static bench::Stack* stack = new bench::Stack(10000, 77, PastryConfig{}, ScribeConfig{},
                                                /*model_bandwidth=*/false);
  Rng rng(78);
  for (auto _ : state) {
    const NodeId key = RandomNodeId(rng);
    const size_t origin = rng.NextBelow(stack->pastry->size());
    benchmark::DoNotOptimize(stack->pastry->node(origin).ComputeNextHop(key));
  }
}
BENCHMARK(BM_RoutingNextHop);

void BM_FullRoute10k(benchmark::State& state) {
  static bench::Stack* stack = new bench::Stack(10000, 79, PastryConfig{}, ScribeConfig{},
                                                /*model_bandwidth=*/false);
  static bool wired = false;
  if (!wired) {
    for (size_t i = 0; i < stack->pastry->size(); ++i) {
      stack->pastry->node(i).SetDeliverHandler(950,
                                               [](const NodeId&, const Message&, int) {});
    }
    wired = true;
  }
  Rng rng(80);
  for (auto _ : state) {
    Message m;
    m.type = 950;
    stack->pastry->node(rng.NextBelow(stack->pastry->size()))
        .Route(RandomNodeId(rng), std::move(m));
    stack->sim.Run();
  }
}
BENCHMARK(BM_FullRoute10k);

void BM_KlUcbIndex(benchmark::State& state) {
  double theta = 0.0;
  for (auto _ : state) {
    theta = theta >= 0.97 ? 0.01 : theta + 0.013;
    benchmark::DoNotOptimize(KlUcbLinkCost(theta, 137, 5000.0));
  }
}
BENCHMARK(BM_KlUcbIndex);

void BM_MlpTrainStep(benchmark::State& state) {
  SyntheticTask task(SyntheticTask::SpeechCommandsLike(1));
  Rng rng(2);
  Dataset shard = task.Generate(200, rng);
  auto model = MakeResNet34Proxy(64, 35, 3);
  TrainConfig config;
  config.local_steps = 1;
  config.batch_size = 20;
  Rng train_rng(4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model->TrainLocal(shard, config, train_rng));
  }
  state.SetItemsProcessed(state.iterations() * config.batch_size);
}
BENCHMARK(BM_MlpTrainStep);

// One minibatch SGD step on a FEMNIST-scale model (128 -> 512 -> 62): long weight
// rows, so the kernel dispatch (KAxpy forward/backward, the MulMatT restructure, the
// scratch-reuse path) dominates over the per-step softmax/sampling overhead. This is
// the model-math headline metric the committed baseline gates.
void BM_SgdStep(benchmark::State& state) {
  SyntheticSpec spec = SyntheticTask::FemnistLike(1);
  spec.dim = 128;
  SyntheticTask task(spec);
  Rng rng(2);
  Dataset shard = task.Generate(200, rng);
  auto model = MakeMlp("sgd-femnist-512", 128, 512, 62, 3);
  TrainConfig config;
  config.local_steps = 1;
  config.batch_size = 20;
  Rng train_rng(4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model->TrainLocal(shard, config, train_rng));
  }
  state.SetItemsProcessed(state.iterations() * config.batch_size);
}
BENCHMARK(BM_SgdStep);

// Float inference over a 256-example Speech-like batch through the SIMD kernels
// (KAxpy hidden/output stages + KSoftmax) — the serving-side half of the model math.
void BM_PredictFloat(benchmark::State& state) {
  SyntheticTask task(SyntheticTask::SpeechCommandsLike(1));
  Rng rng(7);
  const Dataset batch = task.Generate(256, rng);
  auto model = MakeResNet34Proxy(64, 35, 8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model->Accuracy(batch));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(batch.size()));
}
BENCHMARK(BM_PredictFloat);

// Same batch through the dequantize-free int8 path: per-row scales folded into the
// KAxpyI8 alpha, weights consumed directly from the EncodeInt8 wire blob.
void BM_PredictInt8(benchmark::State& state) {
  SyntheticTask task(SyntheticTask::SpeechCommandsLike(1));
  Rng rng(7);
  const Dataset batch = task.Generate(256, rng);
  auto model = MakeResNet34Proxy(64, 35, 8);
  const QuantizedMlp quantized = QuantizedMlp::FromInt8Blob(
      EncodeInt8(model->GetWeights()), QuantizedMlp::Layout{64, 256, 35});
  for (auto _ : state) {
    benchmark::DoNotOptimize(quantized.Accuracy(batch));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(batch.size()));
}
BENCHMARK(BM_PredictInt8);

void BM_FedAvgMerge(benchmark::State& state) {
  const size_t dim = 25000;
  std::vector<WeightedUpdate> updates(16);
  Rng rng(5);
  for (auto& u : updates) {
    u.weights.resize(dim);
    for (auto& w : u.weights) {
      w = static_cast<float>(rng.Gaussian());
    }
    u.sample_weight = 1.0 + rng.NextDouble();
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(FederatedAverage(updates));
  }
}
BENCHMARK(BM_FedAvgMerge);

void BM_SerializeInt8(benchmark::State& state) {
  std::vector<float> weights(25000);
  Rng rng(6);
  for (auto& w : weights) {
    w = static_cast<float>(rng.Gaussian());
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(EncodeInt8(weights));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(weights.size() * 4));
}
BENCHMARK(BM_SerializeInt8);

// Console output plus BenchReport capture: every benchmark's adjusted real time lands
// in BENCH_micro.json as `<name>_ns` so benchdiff can gate regressions (0.75 relative
// tolerance — micro timings are noisy across machines; a 2x slowdown still fails).
class ReportingConsoleReporter : public benchmark::ConsoleReporter {
 public:
  explicit ReportingConsoleReporter(BenchReport* report) : report_(report) {}

  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run.run_type != Run::RT_Iteration) {
        continue;  // Aggregates (mean/median/stddev) would double-count.
      }
      report_->SetMetric(run.benchmark_name() + "_ns", run.GetAdjustedRealTime(), "ns",
                         0.75);
    }
    ConsoleReporter::ReportRuns(runs);
  }

 private:
  BenchReport* report_;
};

}  // namespace
}  // namespace totoro

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
    return 1;
  }
  totoro::BenchReport report("micro");
  report.SetMeta("workload", "default");
  totoro::ReportingConsoleReporter reporter(&report);
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  if (!report.Write()) {
    return 1;
  }
  return 0;
}
