// Shared time-to-accuracy harness for Table 3 and Figures 8/9.
//
// Two task profiles mirror the paper's workloads: "Google Speech"-like (35 classes,
// ResNet-34 proxy, 53% target) and "FEMNIST"-like (62 classes, ShuffleNet V2 proxy,
// 75.5% target). Task difficulty is calibrated so the target lands mid-run, making
// time-to-target a meaningful measurement. The same seeds, shards and hyper-parameters
// feed Totoro and both centralized baselines so only the system architecture differs.
#ifndef BENCH_TTA_COMMON_H_
#define BENCH_TTA_COMMON_H_

#include <set>
#include <string>
#include <vector>

#include "bench/bench_util.h"

namespace totoro {
namespace bench {

struct TaskProfile {
  std::string name;
  SyntheticSpec spec;
  ModelFactory factory;
  double target_accuracy = 0.5;
  float learning_rate = 0.05f;
  size_t max_rounds = 16;
};

inline TaskProfile SpeechProfile() {
  TaskProfile profile;
  profile.name = "speech";
  profile.spec.dim = 32;
  profile.spec.num_classes = 35;
  profile.spec.class_separation = 1.3;
  profile.spec.noise_stddev = 2.0;
  profile.spec.seed = 42;
  profile.factory = [](uint64_t seed) { return MakeResNet34Proxy(32, 35, seed); };
  profile.target_accuracy = 0.53;  // Paper's Google Speech target.
  profile.learning_rate = 0.05f;   // Paper's ResNet-34 learning rate.
  return profile;
}

inline TaskProfile FemnistProfile() {
  TaskProfile profile;
  profile.name = "femnist";
  profile.spec.dim = 32;
  profile.spec.num_classes = 62;
  profile.spec.class_separation = 1.8;
  profile.spec.noise_stddev = 1.2;
  profile.spec.seed = 43;
  profile.factory = [](uint64_t seed) { return MakeShuffleNetV2Proxy(32, 62, seed); };
  profile.target_accuracy = 0.755;  // Paper's FEMNIST target.
  profile.learning_rate = 0.1f;     // Paper's ShuffleNet V2 learning rate.
  return profile;
}

inline FlAppConfig MakeAppConfig(const TaskProfile& profile, const std::string& name) {
  FlAppConfig config;
  config.name = name;
  config.model_factory = profile.factory;
  config.train.learning_rate = profile.learning_rate;
  config.train.batch_size = 16;
  config.train.local_steps = 4;
  config.target_accuracy = profile.target_accuracy;
  config.max_rounds = profile.max_rounds;
  return config;
}

struct TtaOutcome {
  // Virtual time until the LAST application reached its accuracy target (the paper's
  // "total training time" under concurrency). Apps that never reach it count their full
  // run time and clear all_reached.
  double last_target_ms = 0.0;
  bool all_reached = true;
  std::vector<AppResult> results;

  void Fold(const AppResult& result) {
    if (result.reached_target) {
      last_target_ms = std::max(last_target_ms, result.time_to_target_ms);
    } else {
      last_target_ms = std::max(last_target_ms, result.total_time_ms);
      all_reached = false;
    }
    results.push_back(result);
  }
};

constexpr size_t kWorkersPerApp = 8;
constexpr size_t kShardExamples = 150;

inline TtaOutcome RunTotoroTta(const TaskProfile& profile, int num_apps, int fanout_bits,
                               uint64_t seed) {
  PastryConfig pastry_config;
  pastry_config.bits_per_digit = fanout_bits;
  Stack stack(400, seed, pastry_config, ScribeConfig{});
  TotoroEngine engine(stack.forest.get(), ComputeModel{}, seed + 1);
  SyntheticTask task(profile.spec);
  Rng data_rng(seed + 2);
  Rng pick(seed + 3);
  std::vector<NodeId> topics;
  for (int a = 0; a < num_apps; ++a) {
    std::vector<size_t> workers = stack.RandomNodes(kWorkersPerApp, pick);
    std::vector<Dataset> shards;
    for (size_t w = 0; w < workers.size(); ++w) {
      shards.push_back(task.Generate(kShardExamples, data_rng));
    }
    topics.push_back(engine.LaunchApp(
        MakeAppConfig(profile, profile.name + "-" + std::to_string(a)), workers,
        std::move(shards), task.Generate(400, data_rng)));
  }
  engine.StartAll();
  engine.RunToCompletion();
  TtaOutcome outcome;
  for (const auto& topic : topics) {
    outcome.Fold(engine.result(topic));
  }
  return outcome;
}

// OpenFL-like: single-machine framework; leaner networking but a heavier, strictly
// serial coordinator loop.
inline CentralConfig OpenFlConfig() {
  CentralConfig config;
  config.setup_ms_const = 45.0;
  config.aggregate_ms_const = 8.0;
  config.server_bandwidth_bytes_per_ms = 62500.0;  // 500 Mbit/s.
  return config;
}

// FedScale-like: distributed-capable engine with a faster coordinator but still one
// logical coordinator instance.
inline CentralConfig FedScaleConfig() {
  CentralConfig config;
  config.setup_ms_const = 30.0;
  config.aggregate_ms_const = 5.0;
  config.server_bandwidth_bytes_per_ms = 125000.0;  // 1 Gbit/s.
  return config;
}

inline TtaOutcome RunCentralTta(const TaskProfile& profile, int num_apps,
                                const CentralConfig& central_config, uint64_t seed) {
  Simulator sim;
  CentralizedEngine central(&sim, central_config, 400, seed);
  SyntheticTask task(profile.spec);
  Rng data_rng(seed + 2);
  Rng pick(seed + 3);
  std::vector<NodeId> topics;
  for (int a = 0; a < num_apps; ++a) {
    std::vector<size_t> clients;
    std::vector<Dataset> shards;
    std::set<size_t> used;
    while (used.size() < kWorkersPerApp) {
      used.insert(pick.NextBelow(400));
    }
    for (size_t c : used) {
      clients.push_back(c);
      shards.push_back(task.Generate(kShardExamples, data_rng));
    }
    topics.push_back(central.LaunchApp(
        MakeAppConfig(profile, profile.name + "-" + std::to_string(a)), clients,
        std::move(shards), task.Generate(400, data_rng)));
  }
  central.StartAll();
  central.RunToCompletion();
  TtaOutcome outcome;
  for (const auto& topic : topics) {
    outcome.Fold(central.result(topic));
  }
  return outcome;
}

}  // namespace bench
}  // namespace totoro

#endif  // BENCH_TTA_COMMON_H_
