// Reproduces Figures 8 and 9: time-to-accuracy curves when 1..20 applications train
// concurrently (Fig 8: Speech-like task; Fig 9: FEMNIST-like task).
//
// Key shapes to check against the paper: (1) the baselines' curves shift right as the
// number of apps grows (coordinator queueing); (2) Totoro's total training time is
// nearly flat in the number of apps (the paper reports 15.41h for 1 model vs 15.47h for
// 20 at fanout 32).
#include <chrono>

#include "bench/parallel_runner.h"
#include "bench/tta_common.h"
#include "src/obs/export.h"

namespace totoro {
namespace {

// Cheap determinism probe: one single-threaded Totoro TTA run with tracing on, reduced
// to two fingerprints. The engine still honors TOTORO_COMPUTE_THREADS, so comparing
// this line across thread counts (with TOTORO_BENCH_THREADS=1) checks the compute
// pool's bit-identical-schedule guarantee on a real bench workload.
void PrintDeterminismProbe(BenchReport* report) {
  GlobalTracer().Clear();
  GlobalTracer().SetEnabled(true);
  GlobalMetrics().ResetValues();
  bench::RunTotoroTta(bench::SpeechProfile(), /*num_apps=*/1, /*fanout_bits=*/5, 3000);
  const uint64_t metrics_fp = MetricsFingerprint(GlobalMetrics());
  const uint64_t trace_fp = TraceFingerprint(GlobalTracer());
  std::printf("determinism probe: metrics=%016llx trace=%016llx\n",
              static_cast<unsigned long long>(metrics_fp),
              static_cast<unsigned long long>(trace_fp));
  report->SetFingerprint("probe_metrics", metrics_fp);
  report->SetFingerprint("probe_trace", trace_fp);
  GlobalTracer().SetEnabled(false);
  GlobalTracer().Clear();
  GlobalMetrics().ResetValues();
}

void RunFigure(const bench::TaskProfile& profile, const char* figure,
               const char* slug, BenchReport* report) {
  bench::PrintHeader(std::string(figure) + ": time-to-accuracy, " + profile.name);
  AsciiTable table({"#apps", "system", "last-app time-to-target (s)", "all reached"});
  std::vector<double> totoro_times;
  // 3 systems x 4 app counts, plus the two trajectory runs at the end — all
  // independent worlds, so the whole figure fans out over the trial pool with the
  // same seeds the sequential loop used.
  const std::vector<int> apps_axis = {1, 5, 10, 20};
  const size_t kCurveTotoro = apps_axis.size() * 3;
  const size_t kCurveFedscale = kCurveTotoro + 1;
  const auto outcomes = bench::RunTrials<bench::TtaOutcome>(
      apps_axis.size() * 3 + 2, [&](size_t i) {
        if (i == kCurveTotoro) {
          return bench::RunTotoroTta(profile, 10, /*fanout_bits=*/5, 3100);
        }
        if (i == kCurveFedscale) {
          return bench::RunCentralTta(profile, 10, bench::FedScaleConfig(), 3100);
        }
        const int apps = apps_axis[i / 3];
        switch (i % 3) {
          case 0:
            return bench::RunTotoroTta(profile, apps, /*fanout_bits=*/5, 3000);
          case 1:
            return bench::RunCentralTta(profile, apps, bench::OpenFlConfig(), 3000);
          default:
            return bench::RunCentralTta(profile, apps, bench::FedScaleConfig(), 3000);
        }
      });
  for (size_t row = 0; row < apps_axis.size(); ++row) {
    const int apps = apps_axis[row];
    const auto& totoro_run = outcomes[row * 3 + 0];
    const auto& openfl = outcomes[row * 3 + 1];
    const auto& fedscale = outcomes[row * 3 + 2];
    totoro_times.push_back(totoro_run.last_target_ms);
    table.AddRow({AsciiTable::Int(apps), "Totoro (fanout 32)",
                  AsciiTable::Num(totoro_run.last_target_ms / 1000.0, 2),
                  totoro_run.all_reached ? "yes" : "no"});
    table.AddRow({AsciiTable::Int(apps), "OpenFL-like",
                  AsciiTable::Num(openfl.last_target_ms / 1000.0, 2),
                  openfl.all_reached ? "yes" : "no"});
    table.AddRow({AsciiTable::Int(apps), "FedScale-like",
                  AsciiTable::Num(fedscale.last_target_ms / 1000.0, 2),
                  fedscale.all_reached ? "yes" : "no"});
  }
  const std::string rendered = table.Render();
  std::printf("%s", rendered.c_str());
  std::printf("Totoro flatness: 1 app %.2fs vs 20 apps %.2fs (ratio %.2f; paper ~1.004)\n",
              totoro_times.front() / 1000.0, totoro_times.back() / 1000.0,
              totoro_times.back() / totoro_times.front());
  // Virtual-time TTA results — machine-independent, compare exactly.
  const std::string prefix = slug;
  report->SetMetric(prefix + "_totoro_tta_ms_1app", totoro_times.front(), "ms", 0.0);
  report->SetMetric(prefix + "_totoro_tta_ms_20apps", totoro_times.back(), "ms", 0.0);
  report->SetMetric(prefix + "_totoro_flatness_ratio",
                    totoro_times.back() / totoro_times.front(), "ratio", 0.0);
  report->SetFingerprint(prefix + "_table", FingerprintBytes(rendered));

  // One representative accuracy curve per system at 10 apps (the per-round trajectory
  // the paper plots) — computed with the grid above.
  const auto& totoro_run = outcomes[kCurveTotoro];
  const auto& fedscale = outcomes[kCurveFedscale];
  std::printf("\naccuracy trajectory of the LAST app to finish (10 concurrent apps):\n");
  auto print_curve = [](const char* system, const std::vector<AppResult>& results) {
    const AppResult* last = &results.front();
    for (const auto& r : results) {
      const double t = r.reached_target ? r.time_to_target_ms : r.total_time_ms;
      const double lt =
          last->reached_target ? last->time_to_target_ms : last->total_time_ms;
      if (t > lt) {
        last = &r;
      }
    }
    std::printf("  %-18s", system);
    for (const auto& point : last->curve) {
      std::printf(" (%.1fs, %.0f%%)", point.time_ms / 1000.0, point.accuracy * 100.0);
    }
    std::printf("\n");
  };
  print_curve("Totoro:", totoro_run.results);
  print_curve("FedScale-like:", fedscale.results);
}

}  // namespace
}  // namespace totoro

int main() {
  // Everything in the report is virtual-time or a fingerprint, so every metric and
  // fingerprint in BENCH_fig8_fig9_tta.json is identical across thread counts (only
  // the bench_threads meta line records the difference) — benchdiff compares exactly.
  totoro::BenchReport report = totoro::bench::MakeReport("fig8_fig9_tta", 3000, "default");
  totoro::PrintDeterminismProbe(&report);
  // Wall-clock goes to stderr only: stdout must stay byte-identical across
  // TOTORO_COMPUTE_THREADS / TOTORO_BENCH_THREADS settings.
  const auto t0 = std::chrono::steady_clock::now();
  totoro::RunFigure(totoro::bench::SpeechProfile(), "Fig 8", "fig8", &report);
  const auto t1 = std::chrono::steady_clock::now();
  totoro::RunFigure(totoro::bench::FemnistProfile(), "Fig 9", "fig9", &report);
  const auto t2 = std::chrono::steady_clock::now();
  std::fprintf(stderr, "wall-clock: fig8 %.2fs fig9 %.2fs\n",
               std::chrono::duration<double>(t1 - t0).count(),
               std::chrono::duration<double>(t2 - t1).count());
  return report.Write() ? 0 : 1;
}
