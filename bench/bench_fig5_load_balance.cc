// Reproduces Figure 5: Totoro's scalability and load balancing.
//
//   5a  EUA edge zones: 95,271 nodes in 12 regions, distributed-binned into zones.
//   5b  Masters per node for 125..2000 dataflow trees on a 1000-node edge zone
//       (paper: with 500 trees, 99.5% of nodes root <= 3 trees).
//   5c  Masters across zones with different workloads: dense zones absorb more masters.
//   5d  Branch distribution of 17 trees (fanout 8, depths up to ~6) on 1946 nodes over 3
//       topologies.
#include "bench/bench_util.h"
#include "src/common/stats.h"
#include "src/obs/export.h"
#include "src/rings/binning.h"

namespace totoro {
namespace {

void Fig5a(BenchReport* report) {
  bench::PrintHeader("Fig 5a: EUA edge zones (distributed binning of 95,271 nodes)");
  Rng rng(51);
  const auto nodes = GenerateEuaTopology(95271, rng);
  std::vector<GeoPoint> landmarks;
  for (const auto& region : EuaRegions()) {
    landmarks.push_back(region.anchor);
  }
  DistributedBinning binning(landmarks);
  std::vector<size_t> zone_counts(landmarks.size(), 0);
  for (const auto& node : nodes) {
    const uint32_t bin = binning.BinOf(node.location);
    binning.RecordMember(bin, node.location);
    ++zone_counts[bin % landmarks.size()];
  }
  AsciiTable table({"zone (region)", "nodes", "diameter (max intra-zone RTT ms)"});
  for (size_t z = 0; z < landmarks.size(); ++z) {
    table.AddRow({EuaRegions()[z].name, AsciiTable::Int(static_cast<long>(zone_counts[z])),
                  AsciiTable::Num(binning.DiameterOf(static_cast<uint32_t>(z)), 1)});
  }
  const std::string rendered = table.Render();
  std::printf("%s", rendered.c_str());
  report->SetFingerprint("fig5a_table", FingerprintBytes(rendered));
}

void Fig5b(BenchReport* report) {
  bench::PrintHeader("Fig 5b: masters per node, 1000-node edge zone");
  bench::Stack stack(1000, 52, PastryConfig{}, ScribeConfig{}, /*model_bandwidth=*/false);
  Rng pick(53);
  AsciiTable table({"#trees", "max roots/node", "frac nodes <=3 roots", "mean roots/node"});
  std::vector<NodeId> topics;
  for (int target : {125, 250, 500, 1000, 2000}) {
    while (static_cast<int>(topics.size()) < target) {
      const NodeId topic =
          stack.forest->CreateTopic("app-" + std::to_string(topics.size()), "pk", "s");
      // 40 random subscribers per tree; the root is the rendezvous node regardless.
      stack.forest->SubscribeAll(topic, stack.RandomNodes(40, pick));
      topics.push_back(topic);
    }
    const auto roots = stack.forest->RootsPerHost(topics);
    IntCounter counter;
    size_t max_roots = 0;
    size_t total = 0;
    for (const auto& [host, count] : roots) {
      (void)host;
      counter.Add(static_cast<long>(count));
      max_roots = std::max(max_roots, count);
      total += count;
    }
    table.AddRow({AsciiTable::Int(target), AsciiTable::Int(static_cast<long>(max_roots)),
                  AsciiTable::Num(counter.CumulativeFraction(3) * 100.0, 1) + "%",
                  AsciiTable::Num(static_cast<double>(total) / roots.size(), 3)});
    if (target == 500) {
      report->SetMetric("fig5b_max_roots_500trees", static_cast<double>(max_roots),
                        "roots", 0.0);
      report->SetMetric("fig5b_frac_le3_500trees", counter.CumulativeFraction(3), "frac",
                        0.0);
    }
  }
  const std::string rendered = table.Render();
  std::printf("%s", rendered.c_str());
  report->SetFingerprint("fig5b_table", FingerprintBytes(rendered));
  std::printf("paper: with 500 trees, 99.5%% of nodes are roots of <=3 trees\n");
}

void Fig5c(BenchReport* report) {
  bench::PrintHeader("Fig 5c: masters across zones scale with zone workload");
  // Zones sized like dense/medium/sparse EUA regions; each zone runs apps proportional
  // to its population (dense zones generate more FL workload).
  struct Zone {
    const char* name;
    size_t nodes;
    int apps;
  };
  const std::vector<Zone> zones = {{"NSW (dense)", 600, 60},
                                   {"VIC (dense)", 450, 45},
                                   {"SA (medium)", 180, 18},
                                   {"TAS (sparse)", 80, 8},
                                   {"NT (sparse)", 60, 6}};
  AsciiTable table({"zone", "nodes", "apps", "masters in zone", "masters/node"});
  for (const auto& zone : zones) {
    bench::Stack stack(zone.nodes, 54, PastryConfig{}, ScribeConfig{},
                       /*model_bandwidth=*/false);
    Rng pick(55);
    std::vector<NodeId> topics;
    for (int a = 0; a < zone.apps; ++a) {
      const NodeId topic =
          stack.forest->CreateTopic(std::string(zone.name) + "-app-" + std::to_string(a));
      stack.forest->SubscribeAll(topic, stack.RandomNodes(std::min<size_t>(30, zone.nodes),
                                                          pick));
      topics.push_back(topic);
    }
    size_t masters = 0;
    for (const auto& topic : topics) {
      if (stack.forest->RootOf(topic) != SIZE_MAX) {
        ++masters;
      }
    }
    table.AddRow({zone.name, AsciiTable::Int(static_cast<long>(zone.nodes)),
                  AsciiTable::Int(zone.apps), AsciiTable::Int(static_cast<long>(masters)),
                  AsciiTable::Num(static_cast<double>(masters) / zone.nodes, 3)});
  }
  const std::string rendered = table.Render();
  std::printf("%s", rendered.c_str());
  report->SetFingerprint("fig5c_table", FingerprintBytes(rendered));
  std::printf("masters scale with per-zone workload; no zone concentrates load\n");
}

void Fig5d(BenchReport* report) {
  bench::PrintHeader("Fig 5d: branch distribution of 17 trees on 1946 nodes (fanout 8)");
  for (uint64_t topo_seed : {61ull, 62ull, 63ull}) {
    PastryConfig pastry_config;
    pastry_config.bits_per_digit = 3;  // Fanout 8.
    bench::Stack stack(1946, topo_seed, pastry_config, ScribeConfig{},
                       /*model_bandwidth=*/false);
    Rng pick(topo_seed + 100);
    std::map<int, size_t> level_counts;
    int max_depth = 0;
    for (int t = 0; t < 17; ++t) {
      const NodeId topic = stack.forest->CreateTopic("fig5d-" + std::to_string(t));
      // Random tree sizes give depths ~1-6.
      const size_t members = 8 + pick.NextBelow(600);
      stack.forest->SubscribeAll(topic, stack.RandomNodes(members, pick));
      const auto stats = stack.forest->ComputeStats(topic);
      for (const auto& [level, count] : stats.nodes_per_level) {
        level_counts[level] += count;
      }
      max_depth = std::max(max_depth, stats.depth);
    }
    AsciiTable table({"level", "nodes across 17 trees"});
    for (const auto& [level, count] : level_counts) {
      table.AddRow({AsciiTable::Int(level), AsciiTable::Int(static_cast<long>(count))});
    }
    const std::string rendered = table.Render();
    std::printf("topology seed %llu (max depth %d):\n%s",
                static_cast<unsigned long long>(topo_seed), max_depth, rendered.c_str());
    report->SetFingerprint("fig5d_topo" + std::to_string(topo_seed),
                           FingerprintBytes(rendered));
  }
}

}  // namespace
}  // namespace totoro

int main() {
  totoro::BenchReport report = totoro::bench::MakeReport("fig5_load_balance", 51, "default");
  totoro::Fig5a(&report);
  totoro::Fig5b(&report);
  totoro::Fig5c(&report);
  totoro::Fig5d(&report);
  return report.Write() ? 0 : 1;
}
