// Ablation: routing-layer design choices called out in DESIGN.md.
//
//   A. Routing base b (fanout 2^b) vs hop count at several overlay sizes — the
//      ceil(log_{2^b} N) bound in practice.
//   B. Multi-ring path convergence: with zone-prefixed ids, an intra-zone key's entire
//      route stays inside the zone (administrative isolation); with a single flat ring,
//      routes freely cross sites.
#include <set>

#include "bench/bench_util.h"
#include "src/obs/export.h"
#include "src/rings/multi_ring.h"

namespace totoro {
namespace {

void HopCountAblation(BenchReport* report) {
  bench::PrintHeader("Ablation A: mean route hops vs routing base b");
  AsciiTable table({"N", "b=2 (fanout 4)", "b=3 (fanout 8)", "b=4 (fanout 16)",
                    "b=5 (fanout 32)"});
  for (size_t n : {500, 2000, 8000}) {
    std::vector<std::string> row = {AsciiTable::Int(static_cast<long>(n))};
    for (int b : {2, 3, 4, 5}) {
      PastryConfig config;
      config.bits_per_digit = b;
      bench::Stack stack(n, 1400 + b, config, ScribeConfig{}, /*model_bandwidth=*/false);
      double total_hops = 0;
      int delivered = 0;
      for (size_t i = 0; i < stack.pastry->size(); ++i) {
        stack.pastry->node(i).SetDeliverHandler(
            900, [&](const NodeId&, const Message&, int hops) {
              total_hops += hops;
              ++delivered;
            });
      }
      Rng rng(1500);
      for (int t = 0; t < 200; ++t) {
        Message m;
        m.type = 900;
        stack.pastry->node(rng.NextBelow(stack.pastry->size()))
            .Route(RandomNodeId(rng), std::move(m));
      }
      stack.sim.Run();
      row.push_back(AsciiTable::Num(total_hops / delivered, 2));
    }
    table.AddRow(row);
  }
  const std::string rendered = table.Render();
  std::printf("%s", rendered.c_str());
  report->SetFingerprint("ablation_hops_table", FingerprintBytes(rendered));
  std::printf("higher base => fewer hops; growth with N is logarithmic in every column\n");
}

void IsolationAblation(BenchReport* report) {
  bench::PrintHeader("Ablation B: multi-ring administrative isolation");
  // Zone-prefixed overlay: 4 zones x 100 nodes. Route intra-zone keys and count how
  // many route hops land outside the key's zone.
  Simulator sim;
  NetworkConfig net_config;
  net_config.model_bandwidth = false;
  Network net(&sim, std::make_unique<PairwiseUniformLatency>(1.0, 10.0, 7), net_config);
  MultiRingConfig ring_config;
  ring_config.zone_bits = 2;
  MultiRing rings(&net, ring_config);
  Rng rng(1600);
  for (ZoneId z = 0; z < 4; ++z) {
    for (int i = 0; i < 100; ++i) {
      rings.AddNodeInZone(z, rng);
    }
  }
  rings.Build(rng);

  size_t cross_zone_hops = 0;
  size_t total_hops = 0;
  for (size_t i = 0; i < rings.pastry().size(); ++i) {
    rings.pastry().node(i).SetForwardHandler(
        901, [&, i](const NodeId& key, Message&, HostId) {
          ++total_hops;
          if (ZoneOf(rings.pastry().node(i).id(), 2) != ZoneOf(key, 2)) {
            ++cross_zone_hops;
          }
          return true;
        });
    rings.pastry().node(i).SetDeliverHandler(901, [](const NodeId&, const Message&, int) {});
  }
  Rng traffic(1601);
  for (int t = 0; t < 400; ++t) {
    const ZoneId zone = static_cast<ZoneId>(traffic.NextBelow(4));
    const auto members = rings.NodesInZone(zone);
    const size_t origin = members[traffic.NextBelow(members.size())];
    Message m;
    m.type = 901;
    rings.pastry().node(origin).Route(RandomZonedId(zone, 2, traffic), std::move(m));
  }
  sim.Run();
  const double multi_ring_leakage =
      100.0 * static_cast<double>(cross_zone_hops) / static_cast<double>(total_hops);

  // Flat single ring (uniform ids), same sites assigned round-robin: intra-site keys
  // have no affinity and routes freely cross sites.
  bench::Stack flat(400, 1602, PastryConfig{}, ScribeConfig{}, /*model_bandwidth=*/false);
  size_t flat_cross = 0;
  size_t flat_total = 0;
  // Assign each node a site label (nodes have uniform ids; label = index % 4).
  for (size_t i = 0; i < flat.pastry->size(); ++i) {
    flat.pastry->node(i).SetForwardHandler(
        901, [&, i](const NodeId& key, Message&, HostId) {
          ++flat_total;
          // "Key's site" = site of the node that will own it.
          PastryNode* owner = flat.pastry->ClosestLiveNode(key);
          size_t owner_index = 0;
          for (size_t j = 0; j < flat.pastry->size(); ++j) {
            if (&flat.pastry->node(j) == owner) {
              owner_index = j;
            }
          }
          if (owner_index % 4 != i % 4) {
            ++flat_cross;
          }
          return true;
        });
    flat.pastry->node(i).SetDeliverHandler(901, [](const NodeId&, const Message&, int) {});
  }
  Rng flat_traffic(1603);
  for (int t = 0; t < 100; ++t) {
    const size_t origin = flat_traffic.NextBelow(flat.pastry->size());
    // Pick a key owned by a node of the origin's own site (intra-site traffic).
    NodeId key = RandomNodeId(flat_traffic);
    Message m;
    m.type = 901;
    flat.pastry->node(origin).Route(key, std::move(m));
  }
  flat.sim.Run();
  const double flat_leakage =
      100.0 * static_cast<double>(flat_cross) / static_cast<double>(flat_total);

  AsciiTable table({"overlay", "route hops outside the key's site"});
  table.AddRow({"multi-ring (zone-prefixed ids)", AsciiTable::Num(multi_ring_leakage, 1) + "%"});
  table.AddRow({"single flat ring", AsciiTable::Num(flat_leakage, 1) + "%"});
  report->SetMetric("multi_ring_leakage_pct", multi_ring_leakage, "pct", 0.0);
  report->SetMetric("flat_ring_leakage_pct", flat_leakage, "pct", 0.0);
  const std::string rendered = table.Render();
  std::printf("%s", rendered.c_str());
  report->SetFingerprint("ablation_isolation_table", FingerprintBytes(rendered));
  std::printf("zone-prefixed ids keep intra-zone traffic inside the zone (path\n"
              "convergence); a flat ring scatters it across sites\n");
}

}  // namespace
}  // namespace totoro

int main() {
  totoro::BenchReport report =
      totoro::bench::MakeReport("ablation_routing", 1400, "default");
  totoro::HopCountAblation(&report);
  totoro::IsolationAblation(&report);
  return report.Write() ? 0 : 1;
}
