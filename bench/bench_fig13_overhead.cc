// Reproduces Figure 13: CPU and memory overhead of Totoro vs an OpenFL-like baseline on
// a feedforward text-classification workload with a 10-node tree.
//
//   13a  CPU overhead split into FL-related work and DHT-related work. The claim: Totoro
//        spends less on FL tasks than the centralized coordinator, and its DHT layer
//        adds only negligible extra work.
//   13b  Memory overhead: bytes of long-lived protocol state over the course of the run.
//        The claim: after the overlay/routing state is built, no further memory grows.
//
// The simulator measures overhead by explicit accounting (work units ~ CPU, state bytes
// ~ resident memory), which preserves the paper's relative comparison.
#include "bench/tta_common.h"
#include "src/obs/export.h"

namespace totoro {
namespace {

bench::TaskProfile TextProfile() {
  bench::TaskProfile profile;
  profile.name = "text";
  profile.spec = SyntheticTask::TextClassificationLike(13);
  profile.factory = [](uint64_t seed) { return MakeTextClassifierProxy(32, 4, seed); };
  profile.target_accuracy = 2.0;  // Fixed 10 rounds; overhead, not accuracy, is measured.
  profile.learning_rate = 0.1f;
  profile.max_rounds = 10;
  return profile;
}

void Run(BenchReport* report) {
  const auto profile = TextProfile();

  // ---- Totoro: 10-node tree on a 60-node overlay. ----
  bench::Stack stack(60, 1300, PastryConfig{}, ScribeConfig{});
  TotoroEngine engine(stack.forest.get(), ComputeModel{}, 1301);
  SyntheticTask task(profile.spec);
  Rng data_rng(1302);
  std::vector<size_t> workers;
  std::vector<Dataset> shards;
  for (size_t i = 0; i < 10; ++i) {
    workers.push_back(i);
    shards.push_back(task.Generate(100, data_rng));
  }
  std::vector<double> totoro_memory;
  totoro_memory.push_back(static_cast<double>(stack.net->metrics().TotalStateBytes()));
  engine.LaunchApp(bench::MakeAppConfig(profile, "fig13"), workers, std::move(shards),
                   task.Generate(200, data_rng));
  totoro_memory.push_back(static_cast<double>(stack.net->metrics().TotalStateBytes()));
  engine.StartAll();
  // Sample state bytes across the run.
  for (int i = 0; i < 8 && !engine.AllDone(); ++i) {
    stack.sim.Run(5000);
    totoro_memory.push_back(static_cast<double>(stack.net->metrics().TotalStateBytes()));
  }
  engine.RunToCompletion();
  totoro_memory.push_back(static_cast<double>(stack.net->metrics().TotalStateBytes()));
  const double totoro_fl = stack.net->metrics().TotalWork(WorkKind::kFlTask);
  const double totoro_dht = stack.net->metrics().TotalWork(WorkKind::kDhtTask);

  // ---- OpenFL-like baseline, same workload. ----
  Simulator sim;
  CentralizedEngine central(&sim, bench::OpenFlConfig(), 60, 1303);
  Rng data_rng2(1302);
  std::vector<size_t> clients;
  std::vector<Dataset> shards2;
  for (size_t i = 0; i < 10; ++i) {
    clients.push_back(i);
    shards2.push_back(task.Generate(100, data_rng2));
  }
  central.LaunchApp(bench::MakeAppConfig(profile, "fig13"), clients, std::move(shards2),
                    task.Generate(200, data_rng2));
  central.StartAll();
  central.RunToCompletion();
  const double central_fl = central.network().metrics().TotalWork(WorkKind::kFlTask);
  const double central_dht = central.network().metrics().TotalWork(WorkKind::kDhtTask);

  // Busiest coordinator-side node: in Totoro that is the tree master (merges at most
  // `fanout` partial aggregates + evaluates); in OpenFL it is the parameter server
  // (serial setup + every client's update + evaluation).
  const double unit_to_ms = 1.0 / ComputeModel{}.work_units_per_ms;
  double totoro_master_fl = 0.0;
  for (size_t i = 0; i < stack.forest->size(); ++i) {
    const HostId h = stack.forest->scribe(i).host();
    bool is_worker = false;
    for (size_t w : workers) {
      if (w == i) {
        is_worker = true;
      }
    }
    if (is_worker) {
      continue;
    }
    totoro_master_fl = std::max(
        totoro_master_fl,
        stack.net->metrics().work(h).work_units[static_cast<size_t>(WorkKind::kFlTask)]);
  }
  const double server_fl =
      central.network().metrics().work(0).work_units[static_cast<size_t>(WorkKind::kFlTask)];

  bench::PrintHeader("Fig 13a: CPU overhead (work units), text classifier, 10-node tree");
  AsciiTable cpu({"system", "total FL work (ms-eq)", "coordinator-node FL work (ms-eq)",
                  "total DHT work (ms-eq)", "DHT share of total"});
  const double totoro_fl_ms = totoro_fl * unit_to_ms;
  const double totoro_dht_ms = totoro_dht * 0.01;  // ~10us per routing-table operation.
  cpu.AddRow({"Totoro", AsciiTable::Num(totoro_fl_ms, 1),
              AsciiTable::Num(totoro_master_fl * unit_to_ms, 2),
              AsciiTable::Num(totoro_dht_ms, 1),
              AsciiTable::Num(100.0 * totoro_dht_ms / (totoro_fl_ms + totoro_dht_ms), 1) +
                  "%"});
  cpu.AddRow({"OpenFL-like", AsciiTable::Num(central_fl * unit_to_ms, 1),
              AsciiTable::Num(server_fl * unit_to_ms, 2),
              AsciiTable::Num(central_dht * 0.01, 1), "0.0%"});
  const std::string rendered_cpu = cpu.Render();
  std::printf("%s", rendered_cpu.c_str());
  report->SetMetric("fig13a_totoro_fl_ms", totoro_fl_ms, "ms", 0.0);
  report->SetMetric("fig13a_coordinator_fl_ratio",
                    server_fl / std::max(totoro_master_fl, 1.0), "ratio", 0.0);
  report->SetFingerprint("fig13a_table", FingerprintBytes(rendered_cpu));
  std::printf("Totoro's coordinator-side FL work is far below the central server's, and\n"
              "its DHT layer adds only a small share of total CPU work\n");

  bench::PrintHeader("Fig 13b: memory overhead (protocol state bytes over the run)");
  AsciiTable mem({"sample point", "Totoro total state (KB)"});
  const std::vector<std::string> labels = {"overlay built", "tree built"};
  for (size_t i = 0; i < totoro_memory.size(); ++i) {
    const std::string label =
        i < labels.size() ? labels[i] : ("during training #" + std::to_string(i - 1));
    mem.AddRow({i + 1 == totoro_memory.size() ? "end of run" : label,
                AsciiTable::Num(totoro_memory[i] / 1024.0, 1)});
  }
  const std::string rendered_mem = mem.Render();
  std::printf("%s", rendered_mem.c_str());
  report->SetMetric("fig13b_end_state_kb", totoro_memory.back() / 1024.0, "kb", 0.0);
  report->SetFingerprint("fig13b_table", FingerprintBytes(rendered_mem));
  std::printf("initial rise = P2P overlay + routing tables + tree state; flat afterwards\n");
}

}  // namespace
}  // namespace totoro

int main() {
  totoro::BenchReport report = totoro::bench::MakeReport("fig13_overhead", 1300, "default");
  totoro::Run(&report);
  return report.Write() ? 0 : 1;
}
