// Reproduces Figure 11: path-selection frequencies over time for each policy.
//
// Paths from source to destination are ranked 0 (optimal, lowest expected delay)
// upward. For blocks of consecutive packets we print the fraction routed over each path
// rank. Expected shapes (paper): optimal routing always picks rank 0; Totoro locks onto
// rank 0 fastest; next-hop mixes in mediocre ranks; end-to-end LCB is the slowest to
// concentrate on rank 0.
#include <cctype>

#include "bench/bench_util.h"
#include "src/bandit/planner.h"
#include "src/obs/export.h"

namespace totoro {
namespace {

void Run(BenchReport* report) {
  constexpr uint64_t kPackets = 2000;
  constexpr uint64_t kBlock = 400;
  Rng graph_rng(1104);
  // Small graph so every loop-free path is enumerable & rankable.
  const LinkGraph graph = LinkGraph::MakeLayered(2, 3, 0.2, 0.95, graph_rng);
  const BanditNode s = 0;
  const BanditNode d = graph.num_nodes() - 1;
  const size_t num_paths = graph.EnumeratePaths(s, d).size();

  bench::PrintHeader("Fig 11: path-selection frequencies (" + std::to_string(num_paths) +
                     " candidate paths, rank 0 = optimal)");
  std::vector<std::pair<std::string, std::unique_ptr<PathPolicy>>> policies;
  policies.emplace_back("Optimal", MakeOptimalOracle(&graph, s, d));
  policies.emplace_back("Totoro", MakeTotoroHopByHop(&graph, s, d));
  policies.emplace_back("Next-hop", MakeNextHopGreedy(&graph, s, d));
  policies.emplace_back("End-to-end", MakeEndToEndLcb(&graph, s, d));

  for (auto& [name, policy] : policies) {
    Rng run_rng(1200);
    const auto result =
        RunEpisode(graph, s, d, *policy, kPackets, run_rng, /*rank_paths=*/true);
    std::printf("\n%s:\n", name.c_str());
    AsciiTable table({"packets", "rank 0", "rank 1", "rank 2", "rank 3+"});
    for (uint64_t start = 0; start < kPackets; start += kBlock) {
      size_t counts[4] = {0, 0, 0, 0};
      for (uint64_t k = start; k < start + kBlock; ++k) {
        const int rank = result.chosen_path_rank[k];
        counts[rank >= 3 ? 3 : rank] += 1;
      }
      table.AddRow({std::to_string(start + 1) + "-" + std::to_string(start + kBlock),
                    AsciiTable::Num(100.0 * counts[0] / kBlock, 0) + "%",
                    AsciiTable::Num(100.0 * counts[1] / kBlock, 0) + "%",
                    AsciiTable::Num(100.0 * counts[2] / kBlock, 0) + "%",
                    AsciiTable::Num(100.0 * counts[3] / kBlock, 0) + "%"});
    }
    const std::string rendered = table.Render();
    std::printf("%s", rendered.c_str());
    std::string slug;
    for (const char c : name) {
      if (std::isalnum(static_cast<unsigned char>(c)) != 0) {
        slug.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
      }
    }
    report->SetFingerprint("fig11_" + slug, FingerprintBytes(rendered));
  }
  std::printf("\npaper shape: Totoro finds the optimal path fastest and balances the\n"
              "exploration-exploitation tradeoff; end-to-end is last to find it\n");
}

}  // namespace
}  // namespace totoro

int main() {
  totoro::BenchReport report = totoro::bench::MakeReport("fig11_path_freq", 1104, "default");
  totoro::Run(&report);
  return report.Write() ? 0 : 1;
}
