// Defense-cost bench: what Byzantine-robust aggregation buys and what it costs.
//
// Two measurements on the same 40-node overlay / 10-worker softmax workload:
//
//   (a) Outcome under attack — final accuracy of plain FedAvg vs each robust rule
//       (coordinate-median, trimmed-mean, norm-clip) with 30% of the cohort running
//       the scripted sign-flip attacker role. The claim mirrors the golden tests:
//       FedAvg collapses, every defense stays near the attack-free baseline.
//   (b) Cost of the defense — the collect-combiner ships individual updates up the
//       tree instead of folding them hop by hop, and the root pays one
//       O(n log n)-per-coordinate reduction. The scribe wire model charges forwarded
//       aggregates at the largest child piece (exact for folding combiners), so the
//       protocol-byte column shows the defenses add no extra *messages*; the real
//       added cost is the root-side reduction, microbenchmarked below (wall clock,
//       generous tolerance).
//
// All simulation-derived metrics are virtual-time/byte-exact (tolerance 0), so
// benchdiff hard-gates them; only the kernel timings carry a noise budget.
#include <chrono>

#include "bench/bench_util.h"
#include "src/faultsim/fault_injector.h"
#include "src/obs/export.h"
#include "src/faultsim/fault_script.h"
#include "src/fl/robust.h"

namespace totoro {
namespace {

constexpr size_t kHosts = 40;
constexpr size_t kWorkers = 10;
constexpr size_t kRounds = 12;
constexpr size_t kAttackers = 3;  // 30% of the cohort.
constexpr double kAttackScale = 4.0;

struct ScenarioOutcome {
  double final_accuracy = 0.0;
  double total_time_ms = 0.0;
  uint64_t total_bytes = 0;
  uint64_t poisoned_updates = 0;
};

ScenarioOutcome RunScenario(RobustAggregation rule, bool attacked) {
  ScribeConfig scribe_config;
  scribe_config.aggregation_timeout_ms = 600.0;
  bench::Stack stack(kHosts, 1400, PastryConfig{}, scribe_config);
  TotoroEngine engine(stack.forest.get(), ComputeModel{}, 1401);
  FaultInjector injector(stack.pastry.get(), stack.forest.get(), 1402);
  engine.SetUpdateInterceptor(
      [&](const NodeId&, uint64_t round, size_t node_index,
          std::span<const float> reference, std::vector<float>& weights,
          double& sample_weight) {
        return injector.PoisonUpdate(round, stack.forest->scribe(node_index).host(),
                                     reference, weights, sample_weight);
      });

  SyntheticSpec spec;
  spec.dim = 16;
  spec.num_classes = 4;
  spec.seed = 1403;
  SyntheticTask task(spec);
  Rng data_rng(1404);
  FlAppConfig config;
  config.name = "fig14";
  config.model_factory = [](uint64_t s) { return MakeSoftmaxRegression("sr", 16, 4, s); };
  config.train.learning_rate = 0.1f;
  config.target_accuracy = 2.0;
  config.max_rounds = kRounds;
  config.robust.rule = rule;
  config.robust.trim_fraction = 0.3;
  std::vector<size_t> workers;
  std::vector<Dataset> shards;
  for (size_t i = 0; i < kWorkers; ++i) {
    workers.push_back(i);
    shards.push_back(task.Generate(80, data_rng));
  }
  const NodeId topic =
      engine.LaunchApp(config, workers, std::move(shards), task.Generate(200, data_rng));

  if (attacked) {
    std::vector<HostId> attackers;
    for (size_t i = 0; i < kAttackers; ++i) {
      attackers.push_back(stack.forest->scribe(i).host());
    }
    FaultScript script;
    script.SignFlipAt(0.0, 1e9, attackers, kAttackScale);
    injector.Schedule(script);
  }
  const uint64_t bytes_before = stack.net->metrics().total_bytes();
  engine.StartAll();
  engine.RunToCompletion(1e8);

  ScenarioOutcome out;
  const AppResult& result = engine.result(topic);
  out.final_accuracy = result.final_accuracy;
  out.total_time_ms = result.total_time_ms;
  out.total_bytes = stack.net->metrics().total_bytes() - bytes_before;
  out.poisoned_updates = injector.stats().poisoned_updates;
  return out;
}

// Wall-clock cost of one robust reduction over a realistic root inbox.
double KernelMs(RobustAggregation rule, const std::vector<WeightedUpdate>& updates,
                const std::vector<float>& reference, int iters) {
  const auto start = std::chrono::steady_clock::now();
  std::vector<float> sink;
  for (int i = 0; i < iters; ++i) {
    switch (rule) {
      case RobustAggregation::kCoordinateMedian:
        sink = CoordinateMedian(updates);
        break;
      case RobustAggregation::kTrimmedMean:
        sink = TrimmedMean(updates, 0.3);
        break;
      case RobustAggregation::kNormClip:
        sink = NormClippedMean(updates, reference, 0.0);
        break;
      case RobustAggregation::kNone:
        sink = FederatedAverage(updates);
        break;
    }
  }
  const auto end = std::chrono::steady_clock::now();
  // Keep the sink observable so the loop cannot be dropped.
  volatile float keep = sink.empty() ? 0.0f : sink[0];
  (void)keep;
  return std::chrono::duration<double, std::milli>(end - start).count() / iters;
}

void Run(BenchReport* report) {
  struct Row {
    const char* label;
    RobustAggregation rule;
    bool attacked;
  };
  const Row rows[] = {
      {"fedavg_clean", RobustAggregation::kNone, false},
      {"fedavg_attacked", RobustAggregation::kNone, true},
      {"median_attacked", RobustAggregation::kCoordinateMedian, true},
      {"trimmed_attacked", RobustAggregation::kTrimmedMean, true},
      {"normclip_attacked", RobustAggregation::kNormClip, true},
  };

  bench::PrintHeader(
      "Fig 14: robust aggregation under 30% sign-flip attackers (10 workers, 12 rounds)");
  AsciiTable table({"scenario", "final accuracy", "run virtual ms", "network KB",
                    "poisoned updates"});
  for (const Row& row : rows) {
    const ScenarioOutcome out = RunScenario(row.rule, row.attacked);
    table.AddRow({row.label, AsciiTable::Num(out.final_accuracy, 3),
                  AsciiTable::Num(out.total_time_ms, 1),
                  AsciiTable::Num(static_cast<double>(out.total_bytes) / 1024.0, 1),
                  AsciiTable::Num(static_cast<double>(out.poisoned_updates), 0)});
    report->SetMetric(std::string("fig14_acc_") + row.label, out.final_accuracy, "accuracy",
                      0.0);
    report->SetMetric(std::string("fig14_kb_") + row.label,
                      static_cast<double>(out.total_bytes) / 1024.0, "kb", 0.0);
  }
  const std::string rendered = table.Render();
  std::printf("%s", rendered.c_str());
  report->SetFingerprint("fig14_table", FingerprintBytes(rendered));
  std::printf("defenses hold near the clean baseline with no extra protocol messages; "
              "their cost is the root-side reduction below\n");

  // ---- Reduction-kernel microbench: 32 contributors x 4096 coordinates. ----
  Rng rng(1405);
  std::vector<WeightedUpdate> updates(32);
  std::vector<float> reference(4096, 0.0f);
  for (auto& u : updates) {
    u.weights.resize(reference.size());
    for (float& w : u.weights) {
      w = static_cast<float>(rng.Uniform(-1.0, 1.0));
    }
    u.sample_weight = 80.0;
  }
  bench::PrintHeader("Fig 14b: robust reduction kernels (32 updates x 4096 coords)");
  AsciiTable kernels({"rule", "ms per reduction"});
  const struct {
    const char* label;
    RobustAggregation rule;
  } kernel_rows[] = {
      {"fedavg", RobustAggregation::kNone},
      {"coordinate_median", RobustAggregation::kCoordinateMedian},
      {"trimmed_mean", RobustAggregation::kTrimmedMean},
      {"norm_clip", RobustAggregation::kNormClip},
  };
  for (const auto& k : kernel_rows) {
    KernelMs(k.rule, updates, reference, 2);  // Warm-up.
    const double ms = KernelMs(k.rule, updates, reference, 20);
    kernels.AddRow({k.label, AsciiTable::Num(ms, 3)});
    // Wall clock: generous noise budget, benchdiff warns rather than gates.
    report->SetMetric(std::string("fig14b_ms_") + k.label, ms, "ms", 1.0);
  }
  std::printf("%s", kernels.Render().c_str());
  std::printf("order statistics cost one sort per coordinate; clipping stays "
              "mean-like\n");
}

}  // namespace
}  // namespace totoro

int main() {
  totoro::BenchReport report = totoro::bench::MakeReport("fig14_defense", 1400, "default");
  totoro::Run(&report);
  return report.Write() ? 0 : 1;
}
