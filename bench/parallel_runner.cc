#include "bench/parallel_runner.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <exception>
#include <thread>

#include "src/common/env.h"
#include "src/common/thread_annotations.h"

namespace totoro {
namespace bench {

size_t DefaultBenchThreads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return EnvThreadCount("TOTORO_BENCH_THREADS", hw == 0 ? 1 : static_cast<size_t>(hw));
}

void ParallelFor(size_t n, const std::function<void(size_t)>& fn, size_t threads) {
  if (n == 0) {
    return;
  }
  if (threads == 0) {
    threads = DefaultBenchThreads();
  }
  threads = std::min(threads, n);
  if (threads <= 1) {
    for (size_t i = 0; i < n; ++i) {
      fn(i);
    }
    return;
  }

  std::atomic<size_t> next{0};
  Mutex error_mu;
  std::exception_ptr first_error;  // Guarded by error_mu until the pool joins.
  auto worker = [&]() {
    for (;;) {
      const size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) {
        return;
      }
      try {
        fn(i);
      } catch (...) {
        MutexLock lock(&error_mu);
        if (!first_error) {
          first_error = std::current_exception();
        }
        // Drain the remaining indices so sibling workers exit promptly.
        next.store(n, std::memory_order_relaxed);
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (size_t t = 0; t < threads; ++t) {
    pool.emplace_back(worker);
  }
  for (auto& th : pool) {
    th.join();
  }
  if (first_error) {
    std::rethrow_exception(first_error);
  }
}

}  // namespace bench
}  // namespace totoro
