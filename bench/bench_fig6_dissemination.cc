// Reproduces Figure 6: model dissemination and gradient aggregation scale as O(log N).
//
//   6a  Model dissemination time for one tree, N = 20..5120 (x2 steps).
//   6b  Gradient aggregation time over the same sweep.
//   6c  Dissemination time for tree fanouts 8, 16, 32 (DHT base b = 3, 4, 5).
//
// When N grows exponentially, both times must grow only linearly (tree depth).
#include "bench/bench_util.h"
#include "src/obs/export.h"
#include "src/obs/metrics_registry.h"

namespace totoro {
namespace {

struct Timing {
  double dissemination_ms = 0.0;
  double aggregation_ms = 0.0;
  int depth = 0;
};

Timing MeasureTree(size_t n, int bits_per_digit, uint64_t seed, double latency_lo = 2.0,
                   double latency_hi = 40.0) {
  PastryConfig pastry_config;
  pastry_config.bits_per_digit = bits_per_digit;
  // Hop-latency regime: no bandwidth modelling, so times reflect path lengths.
  bench::Stack stack(n, seed, pastry_config, ScribeConfig{}, /*model_bandwidth=*/false,
                     latency_lo, latency_hi);
  const NodeId topic = stack.forest->CreateTopic("fig6");
  stack.forest->SubscribeAll(topic, stack.AllNodes());
  const auto stats = stack.forest->ComputeStats(topic);

  Timing timing;
  timing.depth = stats.depth;
  const size_t root = stack.forest->RootOf(topic);

  // 6a: dissemination = last subscriber delivery - root send, read from the shared
  // latency histogram every subscriber delivery feeds (max over one broadcast).
  Histogram& dissemination = GlobalMetrics().GetHistogram(
      "pubsub.broadcast.latency_ms", Histogram::DefaultLatencyBoundsMs());
  dissemination.Reset();
  stack.forest->scribe(root).Broadcast(topic, 1, std::make_shared<int>(0), 100000);
  stack.sim.Run();
  CHECK_EQ(dissemination.count(), stack.forest->size());
  timing.dissemination_ms = dissemination.max();

  // 6b: aggregation = all leaves submit at t0; time until the root total lands. The
  // root observes exactly one end-to-end latency into the aggregation histogram.
  Histogram& aggregation = GlobalMetrics().GetHistogram(
      "pubsub.aggregate.latency_ms", Histogram::DefaultLatencyBoundsMs());
  aggregation.Reset();
  bool root_done = false;
  stack.forest->scribe(root).SetOnRootAggregate(
      [&](const NodeId&, uint64_t, const AggregationPiece& total) {
        CHECK_EQ(total.count, stack.forest->size());
        root_done = true;
      });
  for (size_t i = 0; i < stack.forest->size(); ++i) {
    AggregationPiece piece;
    stack.forest->scribe(i).SubmitUpdate(topic, 2, std::move(piece), 100000);
  }
  stack.sim.Run();
  CHECK(root_done);
  CHECK_EQ(aggregation.count(), 1u);
  timing.aggregation_ms = aggregation.max();
  return timing;
}

}  // namespace
}  // namespace totoro

int main() {
  using totoro::AsciiTable;
  totoro::BenchReport report = totoro::bench::MakeReport("fig6_dissemination", 600, "default");
  totoro::bench::PrintHeader("Fig 6a/6b: dissemination & aggregation time vs N (fanout 16)");
  AsciiTable table({"N", "tree depth", "dissemination (ms)", "aggregation (ms)"});
  for (size_t n = 20; n <= 5120; n *= 2) {
    const auto timing = totoro::MeasureTree(n, /*bits_per_digit=*/4, /*seed=*/600 + n);
    table.AddRow({AsciiTable::Int(static_cast<long>(n)), AsciiTable::Int(timing.depth),
                  AsciiTable::Num(timing.dissemination_ms, 1),
                  AsciiTable::Num(timing.aggregation_ms, 1)});
    if (n == 5120) {
      // Virtual-time results: machine-independent, compare exactly.
      report.SetMetric("fig6a_dissemination_ms_n5120", timing.dissemination_ms, "ms", 0.0);
      report.SetMetric("fig6b_aggregation_ms_n5120", timing.aggregation_ms, "ms", 0.0);
    }
  }
  const std::string rendered_ab = table.Render();
  std::printf("%s", rendered_ab.c_str());
  report.SetFingerprint("fig6ab_table", totoro::FingerprintBytes(rendered_ab));
  std::printf("N grows exponentially; times grow ~linearly (depth-bounded) => O(log N)\n");

  totoro::bench::PrintHeader("Fig 6c: dissemination time vs tree fanout (N = 2560)");
  AsciiTable fanout_table({"fanout (2^b)", "tree depth", "dissemination (ms)"});
  for (int b : {3, 4, 5}) {
    // Constant 20 ms links isolate the depth effect from latency variance.
    const auto timing = totoro::MeasureTree(2560, b, /*seed=*/700 + b, 20.0, 20.0);
    fanout_table.AddRow({AsciiTable::Int(1 << b), AsciiTable::Int(timing.depth),
                         AsciiTable::Num(timing.dissemination_ms, 1)});
  }
  const std::string rendered_c = fanout_table.Render();
  std::printf("%s", rendered_c.c_str());
  report.SetFingerprint("fig6c_table", totoro::FingerprintBytes(rendered_c));
  std::printf("larger fanout => shallower tree => faster dissemination\n");
  return report.Write() ? 0 : 1;
}
