// Ablation: exploration rule inside the hop-by-hop path planner.
//
// Swaps the KL-UCB index (the paper's choice) for UCB1 and epsilon-greedy while keeping
// the cost-to-go structure identical, isolating the value of KL confidence intervals.
#include "bench/bench_util.h"
#include "src/bandit/planner.h"
#include "src/obs/export.h"

int main() {
  using namespace totoro;
  bench::PrintHeader("Ablation: exploration rule in the hop-by-hop planner (mean of 5 seeds)");
  constexpr uint64_t kPackets = 8000;
  constexpr int kReps = 5;
  std::map<std::string, double> final_regret;
  for (int rep = 0; rep < kReps; ++rep) {
    Rng graph_rng(1700 + rep);
    const LinkGraph graph = LinkGraph::MakeLayered(3, 3, 0.15, 0.95, graph_rng);
    const BanditNode s = 0;
    const BanditNode d = graph.num_nodes() - 1;
    std::vector<std::pair<std::string, std::unique_ptr<PathPolicy>>> policies;
    policies.emplace_back("KL-UCB (paper)", MakeTotoroHopByHop(&graph, s, d));
    policies.emplace_back("UCB1", MakeUcb1HopByHop(&graph, s, d));
    policies.emplace_back("eps-greedy (0.05)",
                          MakeEpsGreedyHopByHop(&graph, s, d, 0.05, 1800 + rep));
    policies.emplace_back("eps-greedy (0.2)",
                          MakeEpsGreedyHopByHop(&graph, s, d, 0.2, 1900 + rep));
    for (auto& [name, policy] : policies) {
      Rng run_rng(2000 + rep);
      final_regret[name] +=
          RunEpisode(graph, s, d, *policy, kPackets, run_rng).FinalRegret();
    }
  }
  AsciiTable table({"exploration rule", "cumulative regret @ 8k packets"});
  for (const char* name :
       {"KL-UCB (paper)", "UCB1", "eps-greedy (0.05)", "eps-greedy (0.2)"}) {
    table.AddRow({name, AsciiTable::Num(final_regret[name] / kReps, 0)});
  }
  const std::string rendered = table.Render();
  std::printf("%s", rendered.c_str());
  std::printf("KL confidence intervals close hopeless links fastest => lowest regret\n");
  BenchReport report = bench::MakeReport("ablation_bandit", 1700, "default");
  report.SetMetric("klucb_regret_8k", final_regret["KL-UCB (paper)"] / kReps, "regret",
                   0.0);
  report.SetMetric("ucb1_regret_8k", final_regret["UCB1"] / kReps, "regret", 0.0);
  report.SetFingerprint("ablation_bandit_table", FingerprintBytes(rendered));
  return report.Write() ? 0 : 1;
}
