// Ablation: FL system architectures across Table 1's design space — centralized
// (hub-and-spoke), hierarchical (client-edge-cloud), and Totoro's decentralized forest —
// on identical concurrent-app workloads.
//
// Expected ordering: the hierarchy's partial aggregation relieves the cloud downlink but
// keeps one serial coordinator, so it sits between the flat star and Totoro; only
// Totoro's per-app masters stay flat as app count grows.
#include <set>

#include "bench/parallel_runner.h"
#include "bench/tta_common.h"
#include "src/baselines/hierarchical_engine.h"
#include "src/obs/export.h"

namespace totoro {
namespace {

double RunHierarchical(const bench::TaskProfile& profile, int num_apps, uint64_t seed) {
  Simulator sim;
  HierarchicalConfig config;
  config.num_edge_servers = 8;
  HierarchicalEngine engine(&sim, config, 400, seed);
  SyntheticTask task(profile.spec);
  Rng data_rng(seed + 2);
  Rng pick(seed + 3);
  std::vector<NodeId> topics;
  for (int a = 0; a < num_apps; ++a) {
    std::vector<size_t> clients;
    std::vector<Dataset> shards;
    std::set<size_t> used;
    while (used.size() < bench::kWorkersPerApp) {
      used.insert(pick.NextBelow(400));
    }
    for (size_t c : used) {
      clients.push_back(c);
      shards.push_back(task.Generate(bench::kShardExamples, data_rng));
    }
    topics.push_back(engine.LaunchApp(
        bench::MakeAppConfig(profile, profile.name + "-" + std::to_string(a)), clients,
        std::move(shards), task.Generate(400, data_rng)));
  }
  engine.StartAll();
  engine.RunToCompletion();
  double last = 0.0;
  for (const auto& topic : topics) {
    const auto& result = engine.result(topic);
    last = std::max(last,
                    result.reached_target ? result.time_to_target_ms : result.total_time_ms);
  }
  return last;
}

void Run(BenchReport* report) {
  const auto profile = bench::FemnistProfile();
  bench::PrintHeader(
      "Ablation: architecture classes, last-app time-to-target (femnist task)");
  AsciiTable table({"#apps", "centralized (s)", "hierarchical (s)", "Totoro (s)"});
  // Each (architecture, #apps) cell is an independent world; fan the 3x4 grid over the
  // trial pool with the sequential seeds and fold to last-app time-to-target.
  const std::vector<int> apps_axis = {1, 5, 10, 20};
  const auto cells = bench::RunTrials<double>(apps_axis.size() * 3, [&](size_t i) {
    const int apps = apps_axis[i / 3];
    switch (i % 3) {
      case 0:
        return bench::RunCentralTta(profile, apps, bench::FedScaleConfig(), 4000)
            .last_target_ms;
      case 1:
        return RunHierarchical(profile, apps, 4000);
      default:
        return bench::RunTotoroTta(profile, apps, /*fanout_bits=*/4, 4000).last_target_ms;
    }
  });
  for (size_t row = 0; row < apps_axis.size(); ++row) {
    table.AddRow({AsciiTable::Int(apps_axis[row]),
                  AsciiTable::Num(cells[row * 3 + 0] / 1000.0, 2),
                  AsciiTable::Num(cells[row * 3 + 1] / 1000.0, 2),
                  AsciiTable::Num(cells[row * 3 + 2] / 1000.0, 2)});
  }
  report->SetMetric("central_tta_ms_20apps", cells[3 * 3 + 0], "ms", 0.0);
  report->SetMetric("hierarchical_tta_ms_20apps", cells[3 * 3 + 1], "ms", 0.0);
  report->SetMetric("totoro_tta_ms_20apps", cells[3 * 3 + 2], "ms", 0.0);
  const std::string rendered = table.Render();
  std::printf("%s", rendered.c_str());
  report->SetFingerprint("ablation_architectures_table", FingerprintBytes(rendered));
  std::printf("hierarchy relieves the cloud's downlink but keeps the serial coordinator;\n"
              "only Totoro's per-app masters stay flat with concurrency\n");
}

}  // namespace
}  // namespace totoro

int main() {
  totoro::BenchReport report =
      totoro::bench::MakeReport("ablation_architectures", 4000, "default");
  totoro::Run(&report);
  return report.Write() ? 0 : 1;
}
