// Scale smoke: builds a large Pastry overlay (default 100k nodes — the paper's edge
// deployments target this order), drives random lookups through it, and reports
// events-per-second plus routing statistics. This is the engine-scalability check:
// it passes when the overlay builds, every lookup resolves, and the hop count stays
// at the O(log_{2^b} N) bound; the printed throughput is the number EXPERIMENTS.md
// tracks for the simulator hot path at scale.
//
// Engine selection: TOTORO_SIM_SHARDS=1 (default) runs the single-queue engine;
// K > 1 runs the identical workload on K shards behind the conservative barrier.
// Routes launch in staggered groups so thousands of lookups are in flight at once —
// that in-flight concurrency is what the sharded engine spreads across workers — and
// the route_stats fingerprint (delivered / hops / events) is the same for every K,
// so CI gates the K=1 and K=4 runs against the SAME committed baseline.
//
// Usage: bench_scale_smoke [nodes] [routes]   (defaults: 100000 nodes, 20000 routes)
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/obs/export.h"
#include "src/obs/metrics_registry.h"
#include "src/obs/profiler.h"
#include "src/sim/sharded_sim.h"

namespace totoro {
namespace {

int Run(size_t nodes, size_t routes) {
  std::unique_ptr<Simulator> sim = MakeSimulatorFromEnv();
  const size_t shards = sim->num_shards();
  std::printf("building %zu-node overlay (oracle construction, %zu shard%s)...\n", nodes,
              shards, shards == 1 ? "" : "s");
  bench::Stack stack(nodes, 20240807, PastryConfig{}, ScribeConfig{},
                     /*model_bandwidth=*/false, /*latency_lo=*/2.0, /*latency_hi=*/40.0,
                     std::move(sim));
  stack.sim.ReserveEvents(1 << 16);
  // Live throughput: update the events/sec gauge from inside the run (sliding window)
  // instead of only as a final average. This makes the gauge wall-clock dependent, so
  // the determinism fingerprint below hashes routing results, never the registry.
  // The sharded engine ignores periodic sampling; the gauge then only carries the
  // whole-run average published at the end.
  stack.sim.EnablePeriodicSampling(8192);
  // Per-host work hook for TOTORO_PROFILE runs: the periodic sampler drives this on
  // the same deterministic trigger as the queue-depth series, so the profile shows
  // how DHT work accumulates across the run.
  GlobalProfiler().AddSampler("net_dht_work_units", [&stack]() {
    return stack.net->metrics().TotalWork(WorkKind::kDhtTask);
  });

  // Deliveries land on whichever shard owns the target host; relaxed atomics keep the
  // sums exact — and deterministic, since addition commutes — at every K.
  std::atomic<uint64_t> delivered{0};
  std::atomic<uint64_t> total_hops{0};
  for (size_t i = 0; i < stack.pastry->size(); ++i) {
    stack.pastry->node(i).SetDeliverHandler(
        1200, [&delivered, &total_hops](const NodeId&, const Message&, int hops) {
          delivered.fetch_add(1, std::memory_order_relaxed);
          total_hops.fetch_add(static_cast<uint64_t>(hops), std::memory_order_relaxed);
        });
  }

  // Pre-plan every route (launch time, source, target) from the seeded Rng so the
  // schedule is one deterministic artifact shared by every engine and shard count.
  // Groups of 256 launch 5 virtual ms apart: with ~2-40ms hop latencies, several
  // groups' worth of lookups overlap in flight by mid-run.
  struct PlannedRoute {
    double at = 0.0;
    size_t src = 0;
    NodeId target;
  };
  Rng rng(20240808);
  std::vector<PlannedRoute> plan;
  plan.reserve(routes);
  for (size_t r = 0; r < routes; ++r) {
    PlannedRoute pr;
    pr.at = static_cast<double>(r / 256) * 5.0;
    pr.src = rng.NextBelow(stack.pastry->size());
    pr.target = RandomNodeId(rng);
    plan.push_back(pr);
  }
  for (const PlannedRoute& pr : plan) {
    stack.sim.ScheduleAt(pr.at, [&stack, pr]() {
      // Launch with the source as the scheduling identity so the lookup's hop chain
      // carries canonical per-host event keys under the sharded engine.
      stack.sim.RunAsHost(stack.pastry->node(pr.src).host(), [&stack, &pr] {
        Message m;
        m.type = 1200;
        stack.pastry->node(pr.src).Route(pr.target, std::move(m));
      });
    });
  }
  stack.sim.Run();

  const uint64_t delivered_total = delivered.load();
  const uint64_t hops_total = total_hops.load();
  const double mean_hops = delivered_total == 0 ? 0.0
                                                : static_cast<double>(hops_total) /
                                                      static_cast<double>(delivered_total);
  std::printf("routes issued:      %zu\n", routes);
  std::printf("routes delivered:   %llu\n",
              static_cast<unsigned long long>(delivered_total));
  std::printf("mean hops:          %.3f\n", mean_hops);
  std::printf("events fired:       %llu\n",
              static_cast<unsigned long long>(stack.sim.events_fired()));
  // The gauge still holds the periodic sampler's last window; show it before the
  // explicit publish overwrites it with the whole-run average.
  std::printf("sim.events_per_sec gauge (live window): %.0f\n",
              GlobalMetrics().GetGauge("sim.events_per_sec").value());
  stack.sim.PublishThroughputMetrics();
  std::printf("events/sec (wall):  %.0f\n", stack.sim.EventsPerSecond());

  // Machine-readable record for tools/benchdiff. The fingerprint covers the routing
  // outcome (deterministic for a given workload and ANY shard count); events/sec is
  // wall-clock and gets a wide tolerance.
  char probe[128];
  std::snprintf(probe, sizeof(probe), "delivered=%llu hops=%llu events=%llu",
                static_cast<unsigned long long>(delivered_total),
                static_cast<unsigned long long>(hops_total),
                static_cast<unsigned long long>(stack.sim.events_fired()));
  char workload[64];
  std::snprintf(workload, sizeof(workload), "nodes=%zu,routes=%zu", nodes, routes);
  BenchReport report = bench::MakeReport("scale_smoke", 20240807, workload);
  report.SetMeta("sim_shards", std::to_string(shards));
  report.SetMetric("routes_delivered", static_cast<double>(delivered_total), "routes",
                   0.0);
  report.SetMetric("mean_hops", mean_hops, "hops", 0.0);
  report.SetMetric("events_fired", static_cast<double>(stack.sim.events_fired()),
                   "events", 0.0);
  // 1.5 equivalent-slowdown budget: shared CI/dev machines show >50% throughput
  // swings from ambient load alone, so only a gross collapse (>2.5x) should gate.
  report.SetMetric("events_per_sec", stack.sim.EventsPerSecond(), "events/s", 1.5);
  report.SetFingerprint("route_stats", FingerprintBytes(probe));
  report.Write();

  if (delivered_total != routes) {
    std::printf("FAIL: %llu routes lost\n",
                static_cast<unsigned long long>(routes - delivered_total));
    return 1;
  }
  // Pastry's bound with the default 4-bit digits: ceil(log16 N) rows plus slack for
  // leaf-set termination. 100k nodes => ~4.2; anything near double that means routing
  // state degenerated.
  if (mean_hops > 8.0) {
    std::printf("FAIL: mean hops %.3f exceeds the O(log N) sanity bound\n", mean_hops);
    return 1;
  }
  std::printf("OK\n");
  return 0;
}

}  // namespace
}  // namespace totoro

int main(int argc, char** argv) {
  const size_t nodes = argc > 1 ? static_cast<size_t>(std::atoll(argv[1])) : 100000;
  const size_t routes = argc > 2 ? static_cast<size_t>(std::atoll(argv[2])) : 20000;
  return totoro::Run(nodes, routes);
}
