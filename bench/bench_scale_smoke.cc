// Scale smoke: builds a large Pastry overlay (default 100k nodes — the paper's edge
// deployments target this order), drives random lookups through it, and reports
// events-per-second plus routing statistics. This is the engine-scalability check:
// it passes when the overlay builds, every lookup resolves, and the hop count stays
// at the O(log_{2^b} N) bound; the printed throughput is the number EXPERIMENTS.md
// tracks for the simulator hot path at scale.
//
// Usage: bench_scale_smoke [nodes] [routes]   (defaults: 100000 nodes, 20000 routes)
#include <cstdio>
#include <cstdlib>

#include "bench/bench_util.h"
#include "src/obs/metrics_registry.h"

namespace totoro {
namespace {

int Run(size_t nodes, size_t routes) {
  std::printf("building %zu-node overlay (oracle construction)...\n", nodes);
  bench::Stack stack(nodes, 20240807, PastryConfig{}, ScribeConfig{},
                     /*model_bandwidth=*/false);
  stack.sim.ReserveEvents(4096);

  uint64_t delivered = 0;
  uint64_t total_hops = 0;
  for (size_t i = 0; i < stack.pastry->size(); ++i) {
    stack.pastry->node(i).SetDeliverHandler(
        1200, [&delivered, &total_hops](const NodeId&, const Message&, int hops) {
          ++delivered;
          total_hops += static_cast<uint64_t>(hops);
        });
  }

  Rng rng(20240808);
  for (size_t r = 0; r < routes; ++r) {
    Message m;
    m.type = 1200;
    stack.pastry->node(rng.NextBelow(stack.pastry->size()))
        .Route(RandomNodeId(rng), std::move(m));
    stack.sim.Run();
  }

  stack.sim.PublishThroughputMetrics();
  const double mean_hops =
      delivered == 0 ? 0.0 : static_cast<double>(total_hops) / static_cast<double>(delivered);
  std::printf("routes issued:      %zu\n", routes);
  std::printf("routes delivered:   %llu\n", static_cast<unsigned long long>(delivered));
  std::printf("mean hops:          %.3f\n", mean_hops);
  std::printf("events fired:       %llu\n",
              static_cast<unsigned long long>(stack.sim.events_fired()));
  std::printf("events/sec (wall):  %.0f\n", stack.sim.EventsPerSecond());
  std::printf("sim.events_per_sec gauge: %.0f\n",
              GlobalMetrics().GetGauge("sim.events_per_sec").value());

  if (delivered != routes) {
    std::printf("FAIL: %llu routes lost\n",
                static_cast<unsigned long long>(routes - delivered));
    return 1;
  }
  // Pastry's bound with the default 4-bit digits: ceil(log16 N) rows plus slack for
  // leaf-set termination. 100k nodes => ~4.2; anything near double that means routing
  // state degenerated.
  if (mean_hops > 8.0) {
    std::printf("FAIL: mean hops %.3f exceeds the O(log N) sanity bound\n", mean_hops);
    return 1;
  }
  std::printf("OK\n");
  return 0;
}

}  // namespace
}  // namespace totoro

int main(int argc, char** argv) {
  const size_t nodes = argc > 1 ? static_cast<size_t>(std::atoll(argv[1])) : 100000;
  const size_t routes = argc > 2 ? static_cast<size_t>(std::atoll(argv[2])) : 20000;
  return totoro::Run(nodes, routes);
}
