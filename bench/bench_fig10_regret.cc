// Reproduces Figure 10: cumulative regret of Totoro's KL-UCB hop-by-hop planner vs
// end-to-end LCB routing and next-hop routing (optimal oracle as the zero line).
//
// Edge links have hidden Bernoulli success rates; each policy routes 10,000 packets.
// Expected ordering (paper): Totoro lowest, next-hop in between (finds decent but
// mediocre paths), end-to-end highest for a long stretch (slowest to identify the
// optimal path).
#include "bench/bench_util.h"
#include "src/bandit/planner.h"
#include "src/obs/export.h"

namespace totoro {
namespace {

void Run(BenchReport* report) {
  bench::PrintHeader("Fig 10: cumulative regret vs #packets (mean of 5 seeds)");
  constexpr uint64_t kPackets = 10000;
  constexpr int kReps = 5;
  const std::vector<uint64_t> checkpoints = {100, 500, 1000, 2000, 5000, 10000};

  std::map<std::string, std::vector<double>> regret_sums;
  for (int rep = 0; rep < kReps; ++rep) {
    Rng graph_rng(1000 + rep);
    const LinkGraph graph = LinkGraph::MakeLayered(3, 3, 0.15, 0.95, graph_rng);
    const BanditNode s = 0;
    const BanditNode d = graph.num_nodes() - 1;
    std::vector<std::pair<std::string, std::unique_ptr<PathPolicy>>> policies;
    policies.emplace_back("Totoro (KL-UCB hop-by-hop)", MakeTotoroHopByHop(&graph, s, d));
    policies.emplace_back("End-to-end LCB", MakeEndToEndLcb(&graph, s, d));
    policies.emplace_back("Next-hop", MakeNextHopGreedy(&graph, s, d));
    policies.emplace_back("Optimal", MakeOptimalOracle(&graph, s, d));
    for (auto& [name, policy] : policies) {
      Rng run_rng(2000 + rep);
      const auto result = RunEpisode(graph, s, d, *policy, kPackets, run_rng);
      auto& sums = regret_sums[name];
      sums.resize(checkpoints.size(), 0.0);
      for (size_t c = 0; c < checkpoints.size(); ++c) {
        sums[c] += result.cumulative_regret[checkpoints[c] - 1];
      }
    }
  }

  AsciiTable table({"policy", "R(100)", "R(500)", "R(1k)", "R(2k)", "R(5k)", "R(10k)"});
  for (const char* name : {"Totoro (KL-UCB hop-by-hop)", "End-to-end LCB", "Next-hop",
                           "Optimal"}) {
    std::vector<std::string> row = {name};
    for (double sum : regret_sums[name]) {
      row.push_back(AsciiTable::Num(sum / kReps, 0));
    }
    table.AddRow(row);
  }
  const std::string rendered = table.Render();
  std::printf("%s", rendered.c_str());
  report->SetMetric("fig10_totoro_regret_10k",
                    regret_sums["Totoro (KL-UCB hop-by-hop)"].back() / kReps, "regret",
                    0.0);
  report->SetFingerprint("fig10_table", FingerprintBytes(rendered));
  std::printf("paper shape: Totoro achieves the lowest regret of the learning policies\n");
}

}  // namespace
}  // namespace totoro

int main() {
  totoro::BenchReport report = totoro::bench::MakeReport("fig10_regret", 1000, "default");
  totoro::Run(&report);
  return report.Write() ? 0 : 1;
}
