// Reproduces Table 3: time-to-accuracy speedup of Totoro over OpenFL-like and
// FedScale-like centralized baselines.
//
// Tasks: speech recognition (35 classes, ResNet-34 proxy, 53% target) and image
// classification (62 classes, ShuffleNet V2 proxy, 75.5% target); 5/10/20 concurrent
// applications; Totoro tree fanouts 8/16/32. Speedup = baseline's last-app
// time-to-target / Totoro's. The paper reports 1.2x-14.0x with the gap growing in the
// number of concurrent applications.
#include <set>

#include "bench/parallel_runner.h"
#include "bench/tta_common.h"
#include "src/obs/export.h"

namespace totoro {
namespace {

// Trials per #apps value: OpenFL-like, FedScale-like, and Totoro at three fanouts.
constexpr size_t kTrialsPerApps = 5;

void RunTask(const bench::TaskProfile& profile, const std::string& slug,
             BenchReport* report) {
  bench::PrintHeader("Table 3: " + profile.name + " (target " +
                     AsciiTable::Num(profile.target_accuracy * 100, 1) + "% top-1)");
  AsciiTable table({"#apps", "fanout", "Totoro TTT (s)", "OpenFL-like TTT (s)",
                    "FedScale-like TTT (s)", "speedup vs OpenFL", "speedup vs FedScale"});
  // All cells are independent worlds keyed only by (apps, system, fanout), so run the
  // whole grid through the trial pool; seeds match the sequential loop exactly.
  const std::vector<int> apps_axis = {5, 10, 20};
  const auto outcomes = bench::RunTrials<bench::TtaOutcome>(
      apps_axis.size() * kTrialsPerApps, [&](size_t i) {
        const int apps = apps_axis[i / kTrialsPerApps];
        switch (i % kTrialsPerApps) {
          case 0:
            return bench::RunCentralTta(profile, apps, bench::OpenFlConfig(), 1000);
          case 1:
            return bench::RunCentralTta(profile, apps, bench::FedScaleConfig(), 1000);
          default: {
            const int b = 3 + static_cast<int>(i % kTrialsPerApps) - 2;
            return bench::RunTotoroTta(profile, apps, b, 2000 + b);
          }
        }
      });
  for (size_t row = 0; row < apps_axis.size(); ++row) {
    const int apps = apps_axis[row];
    const auto& openfl = outcomes[row * kTrialsPerApps + 0];
    const auto& fedscale = outcomes[row * kTrialsPerApps + 1];
    for (int b : {3, 4, 5}) {
      const auto& totoro_run = outcomes[row * kTrialsPerApps + 2 + static_cast<size_t>(b - 3)];
      const double speed_openfl = openfl.last_target_ms / totoro_run.last_target_ms;
      const double speed_fedscale = fedscale.last_target_ms / totoro_run.last_target_ms;
      if (apps == 20 && b == 4) {
        report->SetMetric(slug + "_speedup_openfl_20apps_f16", speed_openfl, "x", 0.0);
        report->SetMetric(slug + "_speedup_fedscale_20apps_f16", speed_fedscale, "x",
                          0.0);
      }
      std::string flags;
      if (!totoro_run.all_reached || !openfl.all_reached || !fedscale.all_reached) {
        flags = " (*)";
      }
      table.AddRow({AsciiTable::Int(apps), AsciiTable::Int(1 << b),
                    AsciiTable::Num(totoro_run.last_target_ms / 1000.0, 2),
                    AsciiTable::Num(openfl.last_target_ms / 1000.0, 2),
                    AsciiTable::Num(fedscale.last_target_ms / 1000.0, 2),
                    AsciiTable::Num(speed_openfl, 1) + "x" + flags,
                    AsciiTable::Num(speed_fedscale, 1) + "x" + flags});
    }
  }
  const std::string rendered = table.Render();
  std::printf("%s", rendered.c_str());
  report->SetFingerprint(slug + "_table", FingerprintBytes(rendered));
  std::printf("(*) = at least one app hit the round cap before its target\n");
}

}  // namespace
}  // namespace totoro

int main() {
  totoro::BenchReport report =
      totoro::bench::MakeReport("table3_speedup", 1000, "default");
  totoro::RunTask(totoro::bench::SpeechProfile(), "speech", &report);
  totoro::RunTask(totoro::bench::FemnistProfile(), "femnist", &report);
  std::printf("\npaper: speedups 1.2x-14.0x, growing with the number of concurrent apps\n");
  return report.Write() ? 0 : 1;
}
