// Thread-pool harness for running independent simulation trials in parallel.
//
// Every bench in this repository is a set of self-contained trials: each builds its own
// Simulator/Network/engine world from a numeric seed and returns plain values. Because
// the observability globals (tracer, metrics registry, logger time source) are
// thread-local and trials derive ALL randomness from their seed, trials can run on any
// thread in any order and still produce bit-identical results — ParallelFor only decides
// wall-clock scheduling, never outcomes. Results are written by trial index, so the
// collected vector is also independent of thread count (the determinism test suite
// asserts parallel == sequential).
//
// Thread count: TOTORO_BENCH_THREADS env var when set, else hardware concurrency.
// `threads == 1` (or a single-core machine) degrades to a plain inline loop.
#ifndef BENCH_PARALLEL_RUNNER_H_
#define BENCH_PARALLEL_RUNNER_H_

#include <cstddef>
#include <functional>
#include <utility>
#include <vector>

namespace totoro {
namespace bench {

// Worker-thread count: TOTORO_BENCH_THREADS if set to a positive integer, else
// std::thread::hardware_concurrency(), never less than 1.
size_t DefaultBenchThreads();

// Invokes fn(0) .. fn(n-1), distributing indices across `threads` worker threads
// (0 = DefaultBenchThreads()). Blocks until every call returns. Runs inline without
// spawning when one thread suffices. If any invocation throws, the first exception is
// rethrown here after all workers finish; remaining indices may be skipped.
void ParallelFor(size_t n, const std::function<void(size_t)>& fn, size_t threads = 0);

// Runs `trial(i)` for i in [0, n) via ParallelFor and returns the results in trial
// order (index i at slot i, regardless of which thread ran it). R must be
// default-constructible and movable.
template <typename R, typename Fn>
std::vector<R> RunTrials(size_t n, Fn&& trial, size_t threads = 0) {
  std::vector<R> out(n);
  ParallelFor(
      n, [&](size_t i) { out[i] = trial(i); }, threads);
  return out;
}

}  // namespace bench
}  // namespace totoro

#endif  // BENCH_PARALLEL_RUNNER_H_
