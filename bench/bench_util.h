// Shared scaffolding for bench binaries: overlay construction and app-launch helpers.
//
// Every bench binary reproduces one table or figure of the paper and prints its rows as
// an ASCII table; EXPERIMENTS.md records paper-vs-measured values. Alongside the table
// each binary fills a BenchReport (src/obs/bench_report.h) and calls Write(), emitting
// BENCH_<name>.json for tools/benchdiff — totoro_lint rule R5 enforces that no bench
// stays ASCII-only.
#ifndef BENCH_BENCH_UTIL_H_
#define BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/parallel_runner.h"
#include "src/baselines/central_engine.h"
#include "src/common/table.h"
#include "src/core/engine.h"
#include "src/core/eua_topology.h"
#include "src/obs/bench_report.h"
#include "src/pubsub/forest.h"

namespace totoro {
namespace bench {

// A complete Totoro stack on a uniform-latency WAN.
//
// The engine defaults to the single-threaded Simulator; pass `custom_sim` (e.g.
// MakeSimulatorFromEnv(), which honors TOTORO_SIM_SHARDS) to run the same stack on the
// sharded engine. The constructor wires the conservative-barrier lookahead from the
// latency model unconditionally — a no-op on the default engine.
struct Stack {
  std::unique_ptr<Simulator> sim_owner;
  Simulator& sim;
  std::unique_ptr<Network> net;
  std::unique_ptr<PastryNetwork> pastry;
  std::unique_ptr<Forest> forest;
  Rng rng;

  Stack(size_t nodes, uint64_t seed, PastryConfig pastry_config = {},
        ScribeConfig scribe_config = {}, bool model_bandwidth = true,
        double latency_lo = 2.0, double latency_hi = 40.0,
        std::unique_ptr<Simulator> custom_sim = nullptr)
      : sim_owner(custom_sim != nullptr ? std::move(custom_sim)
                                        : std::make_unique<Simulator>()),
        sim(*sim_owner),
        rng(seed) {
    NetworkConfig net_config;
    net_config.model_bandwidth = model_bandwidth;
    net = std::make_unique<Network>(
        &sim, std::make_unique<PairwiseUniformLatency>(latency_lo, latency_hi, seed ^ 0xFEED),
        net_config);
    sim.SetLookaheadMs(net->latency_model().MinLatencyMs());
    pastry = std::make_unique<PastryNetwork>(net.get(), pastry_config);
    pastry->Reserve(nodes);
    for (size_t i = 0; i < nodes; ++i) {
      pastry->AddRandomNode(rng);
    }
    pastry->BuildOracle(rng);
    forest = std::make_unique<Forest>(pastry.get(), scribe_config);
  }

  std::vector<size_t> AllNodes() const {
    std::vector<size_t> out(pastry->size());
    for (size_t i = 0; i < out.size(); ++i) {
      out[i] = i;
    }
    return out;
  }

  std::vector<size_t> RandomNodes(size_t count, Rng& pick) {
    std::vector<size_t> all = AllNodes();
    pick.Shuffle(all);
    all.resize(count);
    return all;
  }
};

inline void PrintHeader(const std::string& title) {
  std::printf("\n==== %s ====\n", title.c_str());
}

// Starts this bench's report with the standard metadata every BENCH_*.json carries.
// `workload` names the parameterization (node/route counts, figure variant): benchdiff
// skips comparison when it differs, so dev runs with other arguments never false-fail
// against the committed baseline.
inline BenchReport MakeReport(const std::string& name, uint64_t seed,
                              const std::string& workload) {
  BenchReport report(name);
  report.SetMeta("seed", std::to_string(seed));
  report.SetMeta("bench_threads", std::to_string(DefaultBenchThreads()));
  report.SetMeta("workload", workload);
  return report;
}

}  // namespace bench
}  // namespace totoro

#endif  // BENCH_BENCH_UTIL_H_
