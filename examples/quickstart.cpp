// Quickstart: the Totoro API (paper Table 2) in ~60 lines.
//
// Builds a 50-node edge overlay, creates one FL application tree, broadcasts a model
// payload from the application's master (the rendezvous node), and aggregates worker
// updates back up the tree with in-network FedAvg.
//
//   build/examples/quickstart
#include <cstdio>

#include "src/core/totoro_api.h"
#include "src/fl/aggregation.h"

int main() {
  using namespace totoro;

  // 1. Edge nodes join the DHT-based P2P overlay (Table 2: Join).
  Totoro::Options options;
  options.seed = 7;
  Totoro engine(options);
  for (int i = 0; i < 50; ++i) {
    engine.Join();
  }
  engine.BuildOverlay();

  // 2. An application owner creates a dataflow tree (Table 2: CreateTree) and edge
  //    nodes subscribe as workers (Table 2: Subscribe).
  const NodeId app = engine.CreateTree("activity-recognition");
  for (size_t node = 0; node < engine.NumNodes(); ++node) {
    engine.Subscribe(node, app);
  }
  engine.Run();
  std::printf("tree built: master is node %zu (the rendezvous of AppId %s...)\n",
              engine.MasterOf(app), app.ToHex().substr(0, 8).c_str());

  // 3. The owner customizes the aggregation function (FedAvg here; Table 2 notes owners
  //    may specify their own).
  engine.SetCombiner(MakeFedAvgCombiner());

  // 4. onBroadcast fires at every worker when the model arrives; each worker replies
  //    with its local update (Table 2: Broadcast / onBroadcast / Aggregate).
  engine.SetOnBroadcast([&](Totoro::NodeHandle node, const NodeId& app_id, uint64_t round,
                            const Totoro::ObjectPtr& object) {
    const auto* model = static_cast<const WeightsPayload*>(object.get());
    // A real worker would train here; the quickstart just perturbs the weights.
    auto update = std::make_shared<WeightsPayload>(*model);
    update->weights[0] += static_cast<float>(node) * 0.01f;
    engine.Aggregate(node, app_id, round, std::move(update), /*weight=*/10.0,
                     /*bytes=*/model->weights.size() * 4);
  });

  // 5. onAggregate fires at the master once the whole tree has folded in (Table 2:
  //    onAggregate).
  engine.SetOnAggregate([&](const NodeId&, uint64_t round, const Totoro::ObjectPtr& object,
                            double weight) {
    const auto* merged = static_cast<const WeightsPayload*>(object.get());
    std::printf("round %llu aggregated: total sample weight %.0f, w[0]=%.4f\n",
                static_cast<unsigned long long>(round), weight, merged->weights[0]);
  });

  auto initial = std::make_shared<WeightsPayload>();
  initial->weights.assign(128, 0.0f);
  engine.Broadcast(app, /*round=*/1, initial, /*bytes=*/128 * 4);
  engine.Run();

  std::printf("virtual time elapsed: %.1f ms\n", engine.sim().Now());
  return 0;
}
