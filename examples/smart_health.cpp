// Smart Health (the paper's Fig. 1 use case): many FL applications training
// concurrently on the same edge fleet, each with its own policies.
//
// Three applications run simultaneously over one 150-node overlay:
//   - activity-recognition : ResNet-style model, plain FedAvg
//   - fitness-tracking     : small model, FedProx (heterogeneous wearables)
//   - abnormal-health      : differential privacy (clip + Gaussian noise) on updates
//
// Each gets its own dataflow tree and master; the run prints per-app accuracy curves and
// the master placement, demonstrating the "many masters / many workers" architecture.
//
//   build/examples/smart_health
#include <cstdio>
#include <set>

#include "src/core/engine.h"
#include "src/pubsub/forest.h"

int main() {
  using namespace totoro;

  Simulator sim;
  Network net(&sim, std::make_unique<PairwiseUniformLatency>(2.0, 30.0, 21), NetworkConfig{});
  PastryNetwork pastry(&net, PastryConfig{});
  Rng rng(22);
  for (int i = 0; i < 150; ++i) {
    pastry.AddRandomNode(rng);
  }
  pastry.BuildOracle(rng);
  Forest forest(&pastry, ScribeConfig{});
  TotoroEngine engine(&forest, ComputeModel{}, 23);

  // Wearables are heterogeneous: a third of the fleet is 4x slower.
  std::vector<double> speeds(150, 1.0);
  for (size_t i = 0; i < speeds.size(); i += 3) {
    speeds[i] = 0.25;
  }
  engine.SetSpeedFactors(speeds);

  struct AppSpec {
    FlAppConfig config;
    SyntheticSpec data;
  };
  std::vector<AppSpec> apps;

  {
    AppSpec activity;
    activity.config.name = "activity-recognition";
    activity.config.model_factory = [](uint64_t seed) {
      return MakeResNet34Proxy(32, 6, seed);  // 6 activity classes.
    };
    activity.config.train.learning_rate = 0.05f;
    activity.config.target_accuracy = 0.85;
    activity.config.max_rounds = 12;
    activity.data.dim = 32;
    activity.data.num_classes = 6;
    activity.data.class_separation = 1.0;
    activity.data.noise_stddev = 1.6;
    activity.data.seed = 31;
    apps.push_back(std::move(activity));
  }
  {
    AppSpec fitness;
    fitness.config.name = "fitness-tracking";
    fitness.config.model_factory = [](uint64_t seed) {
      return MakeTextClassifierProxy(32, 4, seed);
    };
    fitness.config.train.learning_rate = 0.1f;
    fitness.config.train.fedprox_mu = 0.1f;  // FedProx for heterogeneous wearables.
    fitness.config.target_accuracy = 0.9;
    fitness.config.max_rounds = 12;
    fitness.data.dim = 32;
    fitness.data.num_classes = 4;
    fitness.data.class_separation = 0.9;
    fitness.data.noise_stddev = 1.7;
    fitness.data.seed = 32;
    apps.push_back(std::move(fitness));
  }
  {
    AppSpec abnormal;
    abnormal.config.name = "abnormal-health-detection";
    abnormal.config.model_factory = [](uint64_t seed) {
      return MakeShuffleNetV2Proxy(32, 3, seed);  // healthy / at-risk / emergency.
    };
    abnormal.config.train.learning_rate = 0.1f;
    abnormal.config.dp = DpConfig{4.0, 0.05};  // Per-app privacy policy.
    abnormal.config.target_accuracy = 0.9;
    abnormal.config.max_rounds = 12;
    abnormal.data.dim = 32;
    abnormal.data.num_classes = 3;
    abnormal.data.class_separation = 0.8;
    abnormal.data.noise_stddev = 1.8;
    abnormal.data.seed = 33;
    apps.push_back(std::move(abnormal));
  }

  Rng pick(24);
  std::vector<NodeId> topics;
  for (auto& spec : apps) {
    SyntheticTask task(spec.data);
    Rng data_rng(spec.data.seed + 100);
    // Each app samples its own cohort of 20 wearables with non-IID shards.
    std::vector<size_t> workers;
    std::set<size_t> used;
    while (used.size() < 20) {
      used.insert(pick.NextBelow(150));
    }
    workers.assign(used.begin(), used.end());
    const Dataset full = task.Generate(2400, data_rng);
    auto shards = PartitionDirichlet(full, workers.size(), 0.5, data_rng);
    for (auto& shard : shards) {
      if (shard.size() == 0) {
        shard.Add(full.example(0));
      }
    }
    topics.push_back(engine.LaunchApp(spec.config, workers, std::move(shards),
                                      task.Generate(400, data_rng)));
  }

  engine.StartAll();
  engine.RunToCompletion();

  std::printf("three Smart Health apps trained concurrently on one 150-node overlay:\n\n");
  for (size_t a = 0; a < topics.size(); ++a) {
    const AppResult& result = engine.result(topics[a]);
    std::printf("%-28s master=node %zu rounds=%llu final acc=%.1f%% time=%.1fs\n",
                result.name.c_str(), forest.RootOf(topics[a]),
                static_cast<unsigned long long>(result.rounds_completed),
                result.final_accuracy * 100.0, result.total_time_ms / 1000.0);
    std::printf("   curve:");
    for (const auto& point : result.curve) {
      std::printf(" %.0f%%", point.accuracy * 100.0);
    }
    std::printf("\n");
  }
  std::printf("\neach app has its own master (dedicated parameter server per app) — no\n"
              "single node coordinates all three\n");
  return 0;
}
