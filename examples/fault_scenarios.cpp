// Scenario-scripted fault injection: the faultsim DSL end to end.
//
// Builds a full-recovery overlay (keep-alive failure detection, suspect probing, tree
// repair with JOIN retries), attaches the InvariantChecker, and walks three scripted
// fault timelines against one dataflow tree:
//
//   1. a half/half network partition that heals after 3 virtual seconds,
//   2. a correlated flapping link between a subscriber and its tree parent,
//   3. a crash of the tree's rendezvous root followed by a same-id rejoin.
//
// After each scenario the post-heal recovery probe reports how long the tree took to
// deliver to every subscriber again, and the checker confirms the protocol invariants
// (single rendezvous root, acyclic connected tree, exact leaf-set ring neighbors) hold
// once the run converges.
//
//   build/examples/fault_scenarios
#include <cstdio>

#include "src/faultsim/fault_injector.h"
#include "src/faultsim/fault_script.h"
#include "src/faultsim/invariant_checker.h"
#include "src/faultsim/recovery.h"
#include "src/pubsub/forest.h"

namespace {

using namespace totoro;

struct World {
  Simulator sim;
  std::unique_ptr<Network> net;
  std::unique_ptr<PastryNetwork> pastry;
  std::unique_ptr<Forest> forest;
  NodeId topic;

  explicit World(size_t n, uint64_t seed) {
    NetworkConfig net_config;
    net_config.model_bandwidth = false;
    net = std::make_unique<Network>(&sim, std::make_unique<PairwiseUniformLatency>(1.0, 10.0, seed),
                                    net_config);
    PastryConfig pastry_config;
    pastry_config.enable_keepalive = true;
    pastry_config.keepalive_interval_ms = 200.0;
    pastry_config.keepalive_timeout_ms = 700.0;
    pastry = std::make_unique<PastryNetwork>(net.get(), pastry_config);
    Rng rng(seed);
    for (size_t i = 0; i < n; ++i) {
      pastry->AddRandomNode(rng);
    }
    pastry->BuildOracle(rng);
    for (size_t i = 0; i < pastry->size(); ++i) {
      pastry->node(i).StartKeepAlive();
    }
    ScribeConfig scribe_config;
    scribe_config.enable_tree_repair = true;
    scribe_config.parent_heartbeat_ms = 100.0;
    scribe_config.parent_timeout_ms = 350.0;
    scribe_config.join_retry_ms = 400.0;
    forest = std::make_unique<Forest>(pastry.get(), scribe_config);
    topic = forest->CreateTopic("fault-scenarios");
    std::vector<size_t> members(n);
    for (size_t i = 0; i < n; ++i) {
      members[i] = i;
    }
    forest->SubscribeAll(topic, members, /*settle_ms=*/1500.0);
    forest->StartMaintenance();
  }
};

void Report(const char* name, double recovery_ms, const FaultInjector& injector,
            const InvariantChecker& checker) {
  std::printf("  %-28s recovery %7.0f ms   drops %6llu   dup %4llu   violations %zu\n",
              name, recovery_ms,
              static_cast<unsigned long long>(injector.stats().partition_drops +
                                              injector.stats().perturb_drops),
              static_cast<unsigned long long>(injector.stats().duplicates),
              checker.violations().size());
}

void PartitionScenario() {
  World world(64, 71);
  FaultInjector injector(world.pastry.get(), world.forest.get(), 72);
  InvariantCheckerConfig checker_config;
  checker_config.convergence_grace_ms = 9000.0;
  InvariantChecker checker(world.pastry.get(), world.forest.get(), checker_config);
  checker.WatchTopic(world.topic);
  checker.SetFaultInjector(&injector);
  checker.Start();

  std::vector<HostId> group_a;
  std::vector<HostId> group_b;
  for (size_t i = 0; i < world.pastry->size(); ++i) {
    (i % 2 == 0 ? group_a : group_b).push_back(world.pastry->node(i).host());
  }
  FaultScript script;
  script.PartitionAt(1000.0, group_a, group_b).HealAt(4000.0);
  injector.Schedule(script);
  world.sim.RunFor(4000.0);
  const double recovery = MeasureRecovery(world.forest.get(), world.topic);
  world.sim.RunFor(12000.0);
  checker.CheckConverged();
  Report("partition 3s, then heal:", recovery, injector, checker);
}

void FlappingLinkScenario() {
  World world(64, 81);
  FaultInjector injector(world.pastry.get(), world.forest.get(), 82);
  InvariantCheckerConfig checker_config;
  checker_config.convergence_grace_ms = 6000.0;
  InvariantChecker checker(world.pastry.get(), world.forest.get(), checker_config);
  checker.WatchTopic(world.topic);
  checker.SetFaultInjector(&injector);
  checker.Start();

  // Flap the first subscriber-to-parent link: six 450ms full-loss bursts, each longer
  // than the 350ms parent timeout, separated by 250ms of clean link.
  const size_t root = world.forest->RootOf(world.topic);
  size_t child = 0;
  while (child == root ||
         world.forest->scribe(child).ParentOf(world.topic) == kInvalidHost) {
    ++child;
  }
  const HostId child_host = world.forest->scribe(child).host();
  const HostId parent_host = world.forest->scribe(child).ParentOf(world.topic);
  FaultScript script;
  script.FlapLinkAt(500.0, child_host, parent_host, 450.0, 250.0, 6);
  injector.Schedule(script);
  world.sim.RunFor(script.EndTime());
  const double recovery = MeasureRecovery(world.forest.get(), world.topic);
  world.sim.RunFor(10000.0);
  checker.CheckConverged();
  Report("flapping parent link:", recovery, injector, checker);
}

void RootCrashScenario() {
  World world(64, 91);
  FaultInjector injector(world.pastry.get(), world.forest.get(), 92);
  InvariantCheckerConfig checker_config;
  checker_config.convergence_grace_ms = 6000.0;
  InvariantChecker checker(world.pastry.get(), world.forest.get(), checker_config);
  checker.WatchTopic(world.topic);
  checker.SetFaultInjector(&injector);
  checker.Start();

  const size_t root = world.forest->RootOf(world.topic);
  const HostId root_host = world.forest->scribe(root).host();
  FaultScript script;
  script.CrashAt(1000.0, root_host).RejoinAt(6000.0, root_host);
  injector.Schedule(script);
  world.sim.RunFor(1000.0);
  const double recovery = MeasureRecovery(world.forest.get(), world.topic);
  world.sim.RunFor(16000.0);
  checker.CheckConverged();
  Report("root crash + rejoin:", recovery, injector, checker);
}

}  // namespace

int main() {
  std::printf("=== scripted fault scenarios against one dataflow tree (64 nodes) ===\n");
  std::printf("recovery = virtual ms until a publish reaches every live subscriber\n\n");
  PartitionScenario();
  FlappingLinkScenario();
  RootCrashScenario();
  std::printf("\nall scenarios replay bit-identically per seed; see tests/faultsim_test.cc\n");
  return 0;
}
