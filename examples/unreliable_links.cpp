// Surviving the edge: unreliable links and churn (the paper's §5 and §4.5 in action).
//
// Part 1 — bandit path planning: gradients must cross a wireless mesh whose links have
// unknown loss rates. The KL-UCB hop-by-hop planner learns the best path online and is
// compared against an oracle and the two baselines.
//
// Part 2 — churn: an FL application keeps training while 10% of the overlay (including
// tree forwarders) dies mid-run; keep-alive-driven tree repair re-attaches the orphaned
// subtrees and the model still converges.
//
//   build/examples/unreliable_links
// Emits observability artifacts next to the working directory:
//   unreliable_links.trace.json    — Chrome trace (open in ui.perfetto.dev)
//   unreliable_links.metrics.json  — metrics snapshot
#include <cstdio>

#include "src/bandit/planner.h"
#include "src/core/engine.h"
#include "src/obs/export.h"
#include "src/obs/metrics_registry.h"
#include "src/obs/trace.h"
#include "src/pubsub/forest.h"

namespace {

void BanditDemo() {
  using namespace totoro;
  std::printf("--- part 1: bandit path planning over lossy wireless links ---\n");
  Rng graph_rng(51);
  const LinkGraph mesh = LinkGraph::MakeLayered(3, 3, 0.2, 0.9, graph_rng);
  const BanditNode worker = 0;
  const BanditNode master = mesh.num_nodes() - 1;
  const auto optimal = mesh.TrueShortestPath(worker, master);
  std::printf("mesh: %d nodes, %d links; optimal path expects %.1f slots per packet\n",
              mesh.num_nodes(), mesh.num_links(), mesh.TruePathDelay(optimal));

  struct Entry {
    const char* label;
    std::unique_ptr<PathPolicy> policy;
  };
  std::vector<Entry> entries;
  entries.push_back({"KL-UCB hop-by-hop (Totoro)", MakeTotoroHopByHop(&mesh, worker, master)});
  entries.push_back({"next-hop greedy", MakeNextHopGreedy(&mesh, worker, master)});
  entries.push_back({"end-to-end LCB", MakeEndToEndLcb(&mesh, worker, master)});
  entries.push_back({"oracle", MakeOptimalOracle(&mesh, worker, master)});
  for (auto& entry : entries) {
    Rng rng(52);
    const auto result = RunEpisode(mesh, worker, master, *entry.policy, 4000, rng);
    double tail_delay = 0;
    for (size_t k = 3000; k < 4000; ++k) {
      tail_delay += result.per_packet_delay[k];
    }
    std::printf("  %-28s cumulative regret %7.0f | steady-state delay %.2f slots\n",
                entry.label, result.FinalRegret(), tail_delay / 1000.0);
  }
}

void ChurnDemo() {
  using namespace totoro;
  std::printf("\n--- part 2: training through churn with tree repair ---\n");
  Simulator sim;
  Network net(&sim, std::make_unique<PairwiseUniformLatency>(2.0, 25.0, 53), NetworkConfig{});
  PastryNetwork pastry(&net, PastryConfig{});
  Rng rng(54);
  for (int i = 0; i < 120; ++i) {
    pastry.AddRandomNode(rng);
  }
  pastry.BuildOracle(rng);
  ScribeConfig scribe_config;
  scribe_config.enable_tree_repair = true;
  scribe_config.parent_heartbeat_ms = 50.0;
  scribe_config.parent_timeout_ms = 180.0;
  // Straggler cut-off so rounds complete even while repair is in flight.
  scribe_config.aggregation_timeout_ms = 400.0;
  Forest forest(&pastry, scribe_config);
  TotoroEngine engine(&forest, ComputeModel{}, 55);

  SyntheticSpec spec;
  spec.dim = 24;
  spec.num_classes = 5;
  spec.seed = 56;
  SyntheticTask task(spec);
  Rng data_rng(57);
  FlAppConfig config;
  config.name = "churn-resilient-app";
  config.model_factory = [](uint64_t seed) { return MakeMlp("m", 24, 32, 5, seed); };
  config.train.learning_rate = 0.1f;
  config.target_accuracy = 2.0;
  config.max_rounds = 12;
  std::vector<size_t> workers;
  std::vector<Dataset> shards;
  for (size_t i = 0; i < 30; ++i) {
    workers.push_back(i);
    shards.push_back(task.Generate(100, data_rng));
  }
  const NodeId topic =
      engine.LaunchApp(config, workers, std::move(shards), task.Generate(300, data_rng));
  forest.StartMaintenance();
  engine.StartAll();

  // Let a few rounds finish, then kill 10% of the overlay (sparing the master).
  sim.RunFor(2000.0);
  // The first 2000 virtual ms (a handful of clean rounds) is plenty for the trace;
  // disabling here keeps the exported file small while metrics keep accumulating.
  totoro::GlobalTracer().SetEnabled(false);
  const size_t master = forest.RootOf(topic);
  Rng fail_rng(58);
  size_t killed = 0;
  while (killed < 12) {
    const size_t victim = fail_rng.NextBelow(pastry.size());
    if (victim != master && pastry.node(victim).alive()) {
      net.SetHostUp(pastry.node(victim).host(), false);
      ++killed;
    }
  }
  std::printf("killed %zu nodes mid-training (master spared)\n", killed);
  const bool connected_at_failure = forest.IsFullyConnected(topic);

  engine.RunToCompletion(/*max_virtual_ms=*/600000.0);
  const AppResult& result = engine.result(topic);
  std::printf("tree connected right after failures: %s; after repair: %s\n",
              connected_at_failure ? "yes" : "no",
              forest.IsFullyConnected(topic) ? "yes" : "no");
  std::printf("training finished %llu rounds, final accuracy %.1f%% — churn did not stop "
              "the app\n",
              static_cast<unsigned long long>(result.rounds_completed),
              result.final_accuracy * 100.0);

  // Export the observability artifacts: the trace covers the clean rounds before the
  // failure; the metrics snapshot folds in the network's byte/drop accounting plus the
  // simulator's event counters (sim.events_fired / sim.events_cancelled, recorded by
  // Run). The wall-clock throughput summary goes to stderr only — stdout and the
  // exported JSON stay bit-identical across runs, which the repo's determinism checks
  // diff for.
  net.metrics().PublishTo(GlobalMetrics());
  std::fprintf(stderr, "simulator: %llu events fired, %llu cancelled, %.0f events/sec wall\n",
               static_cast<unsigned long long>(sim.events_fired()),
               static_cast<unsigned long long>(sim.events_cancelled()),
               sim.EventsPerSecond());
  const char* trace_path = "unreliable_links.trace.json";
  const char* metrics_path = "unreliable_links.metrics.json";
  if (WriteStringToFile(trace_path, TraceToChromeJson(GlobalTracer())) &&
      WriteStringToFile(metrics_path, MetricsToJson(GlobalMetrics()))) {
    std::printf("wrote %s (%zu spans — load it in ui.perfetto.dev or chrome://tracing)\n",
                trace_path, GlobalTracer().num_spans());
    std::printf("wrote %s\n", metrics_path);
  }
}

}  // namespace

int main() {
  totoro::GlobalTracer().SetEnabled(true);
  BanditDemo();
  ChurnDemo();
  return 0;
}
