// Federated keyboard next-word suggestion (the classic mobile-FL workload, cf. the
// paper's §1 language-processing use cases) — showcasing the extension features:
//
//   - Oort-style participant selection (only 8 of 40 phones train per round)
//   - top-k update compression (phones upload 10% of coordinates)
//   - the asynchronous protocol for a second, latency-sensitive app
//   - secure aggregation demonstrated on one round's updates
//
//   build/examples/federated_keyboard
#include <cstdio>

#include "src/core/engine.h"
#include "src/fl/secure_agg.h"
#include "src/pubsub/forest.h"

int main() {
  using namespace totoro;

  Simulator sim;
  Network net(&sim, std::make_unique<PairwiseUniformLatency>(5.0, 60.0, 61), NetworkConfig{});
  PastryNetwork pastry(&net, PastryConfig{});
  Rng rng(62);
  for (int i = 0; i < 120; ++i) {
    pastry.AddRandomNode(rng);
  }
  pastry.BuildOracle(rng);
  Forest forest(&pastry, ScribeConfig{});
  TotoroEngine engine(&forest, ComputeModel{}, 63);

  // Phones are heterogeneous: flagship / mid-range / budget tiers.
  std::vector<double> speeds(120);
  Rng tier(64);
  for (auto& s : speeds) {
    const auto t = tier.NextBelow(3);
    s = t == 0 ? 2.0 : (t == 1 ? 1.0 : 0.3);
  }
  engine.SetSpeedFactors(speeds);

  // "Next-word" task proxy: 48-dim context embeddings, 20 candidate words.
  SyntheticSpec spec;
  spec.dim = 48;
  spec.num_classes = 20;
  spec.class_separation = 1.2;
  spec.noise_stddev = 1.4;
  spec.seed = 65;
  SyntheticTask task(spec);
  Rng data_rng(66);

  auto make_cohort = [&](size_t count, size_t offset) {
    std::vector<size_t> workers;
    std::vector<Dataset> shards;
    const Dataset full = task.Generate(120 * count, data_rng);
    auto parts = PartitionDirichlet(full, count, 0.3, data_rng);  // Heavy non-IID.
    for (size_t i = 0; i < count; ++i) {
      workers.push_back(offset + i);
      if (parts[i].size() == 0) {
        parts[i].Add(full.example(0));
      }
      shards.push_back(std::move(parts[i]));
    }
    return std::make_pair(workers, std::move(shards));
  };

  // App 1: synchronous rounds, Oort selection + top-k compression.
  FlAppConfig keyboard;
  keyboard.name = "next-word-suggest";
  keyboard.model_factory = [&](uint64_t seed) { return MakeMlp("kbd", 48, 64, 20, seed); };
  keyboard.train.learning_rate = 0.08f;
  keyboard.train.local_steps = 6;
  keyboard.participants_per_round = 8;
  keyboard.selection = SelectionPolicy::kOortLike;
  keyboard.compression = CompressionConfig{CompressionKind::kTopK, 0.10};
  keyboard.target_accuracy = 2.0;
  keyboard.max_rounds = 10;
  auto [kbd_workers, kbd_shards] = make_cohort(40, 0);
  const NodeId kbd_topic = engine.LaunchApp(keyboard, kbd_workers, std::move(kbd_shards),
                                            task.Generate(400, data_rng));

  // App 2: emoji prediction with the asynchronous protocol (fresh suggestions matter
  // more than tight synchronization).
  FlAppConfig emoji;
  emoji.name = "emoji-predict";
  emoji.model_factory = [&](uint64_t seed) { return MakeTextClassifierProxy(48, 20, seed); };
  emoji.train.learning_rate = 0.1f;
  emoji.async = AsyncConfig{0.35f, 6};
  emoji.target_accuracy = 2.0;
  emoji.max_rounds = 8;
  auto [emoji_workers, emoji_shards] = make_cohort(24, 60);
  const NodeId emoji_topic = engine.LaunchApp(emoji, emoji_workers, std::move(emoji_shards),
                                              task.Generate(400, data_rng));

  engine.StartAll();
  engine.RunToCompletion();

  const auto& kbd = engine.result(kbd_topic);
  const auto& emj = engine.result(emoji_topic);
  std::printf("next-word-suggest (sync, Oort top-8 of 40, top-k 10%% compression):\n");
  std::printf("  rounds=%llu final acc=%.1f%% time=%.1fs; gradient bytes on the wire: %llu\n",
              static_cast<unsigned long long>(kbd.rounds_completed),
              kbd.final_accuracy * 100.0, kbd.total_time_ms / 1000.0,
              static_cast<unsigned long long>(
                  net.metrics().TotalBytesByClass(TrafficClass::kGradient)));
  std::printf("emoji-predict (async alpha=0.35, rebroadcast every 6 updates):\n");
  std::printf("  model refreshes=%llu final acc=%.1f%% time=%.1fs\n",
              static_cast<unsigned long long>(emj.rounds_completed),
              emj.final_accuracy * 100.0, emj.total_time_ms / 1000.0);

  // Bonus: one secure-aggregation round over the keyboard cohort, end to end.
  std::vector<uint64_t> ids(kbd_workers.begin(), kbd_workers.end());
  SecureAggregationGroup group(ids, 67);
  std::vector<WeightedUpdate> plain;
  std::vector<double> masked_sum;
  double total_weight = 0.0;
  Rng urng(68);
  const size_t dim = 32;
  for (uint64_t id : ids) {
    std::vector<float> w(dim);
    for (auto& v : w) {
      v = static_cast<float>(urng.Gaussian());
    }
    plain.push_back({w, 10.0});
    const auto masked = group.MaskUpdate(id, w, 10.0);
    if (masked_sum.empty()) {
      masked_sum.assign(dim, 0.0);
    }
    for (size_t i = 0; i < dim; ++i) {
      masked_sum[i] += static_cast<double>(masked[i]);
    }
    total_weight += 10.0;
  }
  std::vector<float> sum_f(dim);
  for (size_t i = 0; i < dim; ++i) {
    sum_f[i] = static_cast<float>(masked_sum[i]);
  }
  const auto secure = FinalizeSecureAverage(sum_f, total_weight);
  const auto expected = FederatedAverage(plain);
  double max_err = 0.0;
  for (size_t i = 0; i < dim; ++i) {
    max_err = std::max(max_err, std::abs(static_cast<double>(secure[i]) - expected[i]));
  }
  std::printf("secure aggregation over %zu phones: masks cancelled, max deviation from\n"
              "plain FedAvg = %.2e (no individual update was ever visible)\n",
              ids.size(), max_err);
  return 0;
}
