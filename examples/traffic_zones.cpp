// Road-traffic detection across geographic zones (the paper's §4.2/§4.4 example).
//
// Edge nodes from an EUA-like Australian topology are binned into zones by distributed
// binning. A zone-restricted application (local congestion model for Sydney) must keep
// every packet inside its zone (administrative isolation); a multi-zone application
// (country-wide weather-conditioned traffic model) spans all zones, paying at most
// m * O(log N) hops.
//
//   build/examples/traffic_zones
#include <cstdio>

#include "src/core/eua_topology.h"
#include "src/pubsub/forest.h"
#include "src/rings/multi_ring.h"

int main() {
  using namespace totoro;

  // Build a 600-node EUA-like edge fleet and bin nodes into zones by landmark RTT.
  Rng rng(41);
  const auto eua_nodes = GenerateEuaTopology(600, rng);
  std::vector<GeoPoint> landmarks = {
      {-33.87, 151.21},  // Sydney
      {-37.81, 144.96},  // Melbourne
      {-27.47, 153.03},  // Brisbane
      {-31.95, 115.86},  // Perth
  };
  DistributedBinning binning(landmarks);

  Simulator sim;
  std::vector<GeoPoint> positions;
  positions.reserve(eua_nodes.size());
  for (const auto& node : eua_nodes) {
    positions.push_back(node.location);
  }
  NetworkConfig net_config;
  net_config.model_bandwidth = false;
  Network net(&sim, std::make_unique<GeoLatency>(positions), net_config);

  MultiRingConfig ring_config;
  ring_config.zone_bits = 2;  // 4 zones = 4 landmarks.
  MultiRing rings(&net, ring_config);
  for (const auto& node : eua_nodes) {
    rings.AddNode(node.location, binning, rng);
  }
  rings.Build(rng);
  Forest forest(&rings.pastry(), ScribeConfig{});

  std::printf("zone populations (distributed binning of %zu EUA nodes):\n",
              eua_nodes.size());
  const char* zone_names[] = {"Sydney", "Melbourne", "Brisbane", "Perth"};
  for (const auto& [zone, count] : rings.ZonePopulation()) {
    std::printf("  zone %u (%s): %zu nodes\n", zone, zone_names[zone % 4], count);
  }

  // --- Zone-restricted app: Sydney congestion model. ---
  // Keys are zone-prefixed, so the tree and all its traffic stay inside zone 0; the
  // administrator's boundary policy would veto anything else.
  const ZoneId sydney = 0;
  const NodeId local_app =
      MakeZonedId(sydney, MakeAppId("sydney-congestion", "road-authority", "v1"), 2);
  const auto sydney_nodes = rings.NodesInZone(sydney);
  std::vector<size_t> members(sydney_nodes.begin(),
                              sydney_nodes.begin() +
                                  static_cast<long>(std::min<size_t>(40, sydney_nodes.size())));
  forest.SubscribeAll(local_app, members);

  const auto isolate = IsolateZoneBoundaryPolicy(2);
  size_t in_zone = 0;
  size_t total = 0;
  for (size_t i = 0; i < forest.size(); ++i) {
    if (forest.scribe(i).InTree(local_app)) {
      ++total;
      if (rings.zone_of_node(i) == sydney) {
        ++in_zone;
      }
    }
  }
  std::printf("\nzone-restricted app 'sydney-congestion': %zu tree members, %zu in-zone\n",
              total, in_zone);
  std::printf("boundary policy allows its key inside zone 0: %s; blocks it at zone 1: %s\n",
              rings.MayForward(members[0], local_app, isolate) ? "yes" : "no",
              isolate(local_app, 1) ? "no(!)" : "yes");

  // --- Multi-zone app: country-wide traffic/weather model. ---
  // The owner opts into all zones; workers come from every zone, and the tree spans the
  // whole fleet under the allow-all policy.
  const NodeId wide_app = MakeAppId("national-traffic-weather", "road-authority", "v1");
  std::vector<size_t> wide_members;
  Rng pick(42);
  for (ZoneId z = 0; z < 4; ++z) {
    const auto zone_nodes = rings.NodesInZone(z);
    for (int i = 0; i < 10 && i < static_cast<int>(zone_nodes.size()); ++i) {
      wide_members.push_back(zone_nodes[pick.NextBelow(zone_nodes.size())]);
    }
  }
  forest.SubscribeAll(wide_app, wide_members);
  const auto stats = forest.ComputeStats(wide_app);
  std::printf("\nmulti-zone app 'national-traffic-weather': %zu subscribers across 4 zones,\n"
              "tree depth %d, all connected: %s\n",
              stats.num_subscribers, stats.depth,
              stats.all_subscribers_connected ? "yes" : "no");

  // Demonstrate a cross-country broadcast through the spanning tree.
  const size_t root = forest.RootOf(wide_app);
  size_t reached = 0;
  for (size_t i = 0; i < forest.size(); ++i) {
    forest.scribe(i).SetOnBroadcast(
        [&](const NodeId&, uint64_t, const ScribeBroadcast&) { ++reached; });
  }
  forest.scribe(root).Broadcast(wide_app, 1, std::make_shared<int>(0), 50000);
  sim.Run();
  std::printf("model broadcast from master (node %zu) reached %zu/%zu subscribers\n", root,
              reached, stats.num_subscribers);
  return 0;
}
